"""Statement execution: ties the planner, optimizer, operators, storage,
and the UDF subsystem together.

One :class:`StatementExecutor` serves one database instance.  For each
SELECT it builds the logical plan, optimizes it, compiles expressions to
closures, sets up per-query UDF executors (Design 2/4 executors are
*processes created per query*, per the paper), runs the Volcano tree,
and tears everything down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, PlanError
from ..storage.btree import BPlusTree
from ..storage.catalog import Column as CatColumn
from ..storage.catalog import IndexInfo, TableInfo
from ..storage.heapfile import HeapFile
from ..storage.lob import LOBRef
from ..storage.record import ColumnType, serialize_record
from . import ast_nodes as A
from .expressions import (
    FunctionResolver,
    QueryRuntime,
    compile_expr,
    eval_batch,
)
from .operators import (
    Aggregate,
    Distinct,
    Exchange,
    Filter,
    IndexScan,
    Limit,
    NestedLoopJoin,
    PhysicalOp,
    Project,
    SeqScan,
    Sort,
    apply_predicates,
    instrument_operator,
)
from .optimizer import CostOracle, optimize
from .planner import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalExchange,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    plan_select,
)
from .types import SQLType


@dataclass
class QueryResult:
    """The rows a statement produced (DML reports a rowcount)."""

    columns: List[str] = field(default_factory=list)
    rows: List[tuple] = field(default_factory=list)
    rowcount: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, have "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


class _QueryUDFResolver(FunctionResolver):
    """Resolves UDF names to per-query executors, creating them lazily.

    When a :class:`~repro.obs.profile.QueryProfile` is active, each
    executor gets its pre-bound (function, design) profile handle before
    ``begin_query`` — admission refusals at pool setup are recorded too
    — and loses it again at ``finish`` (in-process executors are shared
    across queries; the handle must not outlive this one).

    ``private=True`` requests fresh (unshared) executors even for
    in-process designs — required when statements run concurrently, see
    :meth:`~repro.core.udf.UDFRegistry.executor_for_query`.  ``finish``
    is unchanged for them: ``end_query`` releases everything a private
    executor holds (closing one would unload the UDF from the shared VM).
    """

    def __init__(self, registry, binding, profile=None, private=False):
        self.registry = registry
        self.binding = binding
        self.profile = profile
        self.private = private
        self.executors: Dict[str, object] = {}

    def resolve_udf(self, name: str):
        key = name.lower()
        if self.registry is None or not self.registry.has(key):
            return None
        executor = self.executors.get(key)
        if executor is None:
            executor = self.registry.executor_for_query(
                key, private=self.private
            )
            if self.profile is not None:
                executor.profile = self.profile.udf(
                    key, executor.definition.design.value
                )
            try:
                executor.begin_query(self.binding)
            except BaseException as exc:
                if executor.profile is not None:
                    executor.profile.record_error(exc)
                executor.profile = None
                raise
            self.executors[key] = executor
        return executor, executor.definition.signature.param_types

    def udf_ret_type(self, name: str) -> Optional[str]:
        """Answer result-type questions from the catalog alone.

        Planning must not spin up executors (with inlining on, a call
        site may never execute at all); the registry already knows the
        declared signature.
        """
        key = name.lower()
        if self.registry is None or not self.registry.has(key):
            return None
        return self.registry.get(key).signature.ret_type

    def finish(self) -> None:
        for executor in self.executors.values():
            try:
                executor.end_query()
            finally:
                executor.profile = None
        self.executors.clear()


class _RegistryOracle(CostOracle):
    """Cost oracle over the UDF registry, with optional adaptive feedback.

    ``adaptive`` is the database's
    :class:`~repro.obs.adaptive.AdaptiveFeedback` store (or None); when
    present and an estimate has crossed its evidence threshold, the
    observed number overrides the static hint.
    """

    def __init__(self, registry, adaptive=None, inlining=False,
                 private=False):
        self.registry = registry
        self.adaptive = adaptive
        self.inlining = inlining
        self.private = private

    def inline_template(self, name: str):
        """The UDF's :class:`~repro.analysis.decompile.InlineTemplate`,
        when inlining is enabled and the decompiler lifted the body."""
        if not self.inlining:
            return None
        definition = self.udf_definition(name)
        if definition is None:
            return None
        inline = getattr(definition, "inline", None)
        if inline is not None and hasattr(inline, "expr"):
            return inline
        return None

    def inline_refusal(self, name: str):
        """The refusal reason code for a non-inlinable UDF, when
        inlining is enabled (so seed EXPLAIN output stays byte-identical
        with inlining off)."""
        if not self.inlining:
            return None
        definition = self.udf_definition(name)
        if definition is None:
            return None
        inline = getattr(definition, "inline", None)
        if inline is not None and hasattr(inline, "reason"):
            return inline.reason
        return None

    def observed_cost(self, name: str):
        if self.adaptive is None:
            return None
        return self.adaptive.observed_cost(name)

    def observed_selectivity(self, key: str):
        if self.adaptive is None:
            return None
        return self.adaptive.observed_selectivity(key)

    def udf_hints(self, name: str):
        if self.registry is not None and self.registry.has(name):
            return self.registry.get(name).cost_hints
        return None

    def udf_definition(self, name: str):
        if self.registry is not None and self.registry.has(name):
            return self.registry.get(name)
        return None

    def fold_udf(self, name: str, args):
        """Evaluate a (pure) UDF once at plan time.

        Argument coercion mirrors the per-tuple call path: ints widen to
        floats for FLOAT parameters.  Isolated-design executors are per
        query and torn down right away; in-process executors are shared
        with the upcoming execution.
        """
        definition = self.registry.get(name)
        coerced = [
            float(value)
            if declared == "float" and isinstance(value, int)
            and not isinstance(value, bool)
            else value
            for declared, value in zip(
                definition.signature.param_types, args
            )
        ]
        executor = self.registry.executor_for_query(
            name, private=self.private
        )
        try:
            executor.begin_query()
            return executor.invoke(coerced)
        finally:
            executor.end_query()
            if definition.design.is_isolated:
                executor.close()


class StatementExecutor:
    """Executes parsed statements against a database's internals."""

    def __init__(self, database):
        self.db = database

    # -- dispatch ------------------------------------------------------------

    def execute(self, statement: A.Statement) -> QueryResult:
        if isinstance(statement, A.Select):
            return self.execute_select(statement)
        if isinstance(statement, A.Explain):
            return self.execute_explain(statement)
        if isinstance(statement, A.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, A.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, A.CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, A.Insert):
            return self._insert(statement)
        if isinstance(statement, A.Update):
            return self._update(statement)
        if isinstance(statement, A.Delete):
            return self._delete(statement)
        if isinstance(statement, A.CreateFunction):
            return self._create_function(statement)
        if isinstance(statement, A.DropFunction):
            return self._drop_function(statement)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    # -- SELECT ------------------------------------------------------------------

    def execute_select(self, select: A.Select) -> QueryResult:
        return self.select_with_plan(select)[0]

    def select_with_plan(
        self,
        select: A.Select,
        snapshot=None,
        plan: Optional[LogicalPlan] = None,
        private: bool = False,
    ) -> Tuple[QueryResult, LogicalPlan]:
        """Run a SELECT, also returning its optimized logical plan.

        ``plan`` short-circuits planning with a plan-cache hit (the
        logical plan carries no execution state, so one cached object
        serves any number of concurrent statements); the returned plan
        is what a caller stores back into the cache on a miss.
        ``snapshot`` routes scans to the pinned frozen table images
        instead of live heap pages, and ``private`` gives each UDF a
        fresh (unshared) executor — both required when this statement
        runs concurrently with others.
        """
        obs = self.db.observability
        profile = obs.query_profile()
        binding = self.db.broker.bind()
        resolver = _QueryUDFResolver(
            self.db.registry, binding, profile, private=private
        )
        runtime = QueryRuntime(lobs=self.db.lobs, binding=binding)
        try:
            if plan is None:
                plan = plan_select(select, self.db.catalog, resolver)
                plan = optimize(
                    plan,
                    _RegistryOracle(
                        self.db.registry, obs.adaptive,
                        inlining=self.db.inlining, private=private,
                    ),
                    parallelism=self.db.parallelism,
                    inlining=self.db.inlining,
                )
            root = self._physical(
                plan, resolver, runtime, profile, snapshot=snapshot
            )
            rows = [tuple(row) for row in root.rows()]
            result = QueryResult(
                columns=plan.schema.names(), rows=rows, rowcount=len(rows)
            )
            return result, plan
        finally:
            resolver.finish()
            if profile is not None:
                profile.finish()

    def execute_explain(self, statement: A.Explain) -> QueryResult:
        """Plan + optimize (and, for ANALYZE, execute); one row per line.

        ``EXPLAIN ANALYZE`` runs the query against a forced, private
        profile so the rendered actuals are this one run's: operator
        head lines gain ``(actual rows=... time=...)`` and a per-UDF
        profile section follows the plan.  Adaptive feedback (when
        enabled) still accumulates, since the query really executed.
        """
        from .explain import explain_plan, udf_profile_lines

        obs = self.db.observability
        profile = (
            obs.query_profile(force=True) if statement.analyze else None
        )
        binding = self.db.broker.bind()
        resolver = _QueryUDFResolver(self.db.registry, binding, profile)
        runtime = QueryRuntime(lobs=self.db.lobs, binding=binding)
        oracle = _RegistryOracle(
            self.db.registry, obs.adaptive, inlining=self.db.inlining
        )
        try:
            plan = plan_select(statement.select, self.db.catalog, resolver)
            plan = optimize(
                plan, oracle, parallelism=self.db.parallelism,
                inlining=self.db.inlining,
            )
            if statement.analyze:
                root = self._physical(
                    plan, resolver, runtime, profile, snapshot=None
                )
                for __ in root.batches():
                    pass
            lines = explain_plan(
                plan, oracle, batch_size=self.db.batch_size,
                analysis=profile,
            )
            if statement.analyze:
                profiled = udf_profile_lines(profile)
                if profiled:
                    lines.append("-- UDF profiles --")
                    lines.extend(profiled)
        finally:
            resolver.finish()
            if profile is not None:
                profile.finish()
        return QueryResult(
            columns=["plan"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def _physical(
        self,
        plan: LogicalPlan,
        resolver: _QueryUDFResolver,
        runtime: QueryRuntime,
        profile=None,
        snapshot=None,
    ) -> PhysicalOp:
        op = self._build_physical(
            plan, resolver, runtime, profile, snapshot=snapshot
        )
        if profile is not None and profile.track_operators:
            stats = profile.operator(plan, type(op).__name__)
            instrument_operator(op, stats)
        return op

    def _build_physical(
        self,
        plan: LogicalPlan,
        resolver: _QueryUDFResolver,
        runtime: QueryRuntime,
        profile=None,
        snapshot=None,
    ) -> PhysicalOp:
        pool = self.db.pool
        batch_size = self.db.batch_size

        def compile_all(exprs, schema):
            return [compile_expr(e, schema, resolver, runtime) for e in exprs]

        def compile_predicates(exprs, schema):
            """Predicate conjuncts, probed when adaptive feedback wants
            their observed selectivity."""
            fns = compile_all(exprs, schema)
            if profile is not None and profile.wants_selectivity:
                from .explain import render_expr

                fns = [
                    profile.predicate_probe(render_expr(expr), fn)
                    for expr, fn in zip(exprs, fns)
                ]
            return fns

        if isinstance(plan, LogicalScan):
            predicates = compile_predicates(plan.predicates, plan.schema)
            if plan.index is not None:
                return IndexScan(
                    pool, plan.table_info, plan.index,
                    plan.index_lo, plan.index_hi, predicates,
                    batch_size=batch_size, snapshot=snapshot,
                )
            return SeqScan(
                pool, plan.table_info, predicates, batch_size=batch_size,
                snapshot=snapshot,
            )
        if isinstance(plan, LogicalJoin):
            left = self._physical(plan.left, resolver, runtime, profile,
                                      snapshot=snapshot)
            right = self._physical(plan.right, resolver, runtime, profile,
                                      snapshot=snapshot)
            predicates = compile_predicates(plan.predicates, plan.schema)
            return NestedLoopJoin(
                left, right, predicates, batch_size=batch_size
            )
        if isinstance(plan, LogicalExchange):
            inner = plan.child
            if isinstance(inner, LogicalFilter):
                child = self._physical(
                    inner.child, resolver, runtime, profile,
                    snapshot=snapshot,
                )
                predicates = compile_predicates(
                    inner.predicates, inner.child.schema
                )

                def stage(batch, predicates=predicates):
                    return apply_predicates(predicates, batch)

            elif isinstance(inner, LogicalProject):
                child = self._physical(
                    inner.child, resolver, runtime, profile,
                    snapshot=snapshot,
                )
                exprs = compile_all(inner.exprs, inner.child.schema)

                def stage(batch, exprs=exprs):
                    columns = [eval_batch(fn, batch) for fn in exprs]
                    return [
                        [column[index] for column in columns]
                        for index in range(len(batch))
                    ]

            else:
                # Unknown region shape: run it serially rather than fail.
                return self._build_physical(inner, resolver, runtime, profile,
                                      snapshot=snapshot)
            return Exchange(
                child, stage, parallelism=plan.parallelism,
                batch_size=batch_size,
            )
        if isinstance(plan, LogicalFilter):
            child = self._physical(plan.child, resolver, runtime, profile,
                                      snapshot=snapshot)
            return Filter(
                child, compile_predicates(plan.predicates, plan.child.schema),
                batch_size=batch_size,
            )
        if isinstance(plan, LogicalProject):
            child = self._physical(plan.child, resolver, runtime, profile,
                                      snapshot=snapshot)
            return Project(
                child, compile_all(plan.exprs, plan.child.schema),
                batch_size=batch_size,
            )
        if isinstance(plan, LogicalAggregate):
            child = self._physical(plan.child, resolver, runtime, profile,
                                      snapshot=snapshot)
            group_fns = compile_all(plan.group_exprs, plan.child.schema)
            agg_specs = [
                (
                    spec.func,
                    (
                        compile_expr(
                            spec.arg, plan.child.schema, resolver, runtime
                        )
                        if spec.arg is not None
                        else None
                    ),
                    spec.distinct,
                )
                for spec in plan.aggregates
            ]
            return Aggregate(
                child, group_fns, agg_specs, batch_size=batch_size
            )
        if isinstance(plan, LogicalDistinct):
            return Distinct(
                self._physical(plan.child, resolver, runtime, profile,
                               snapshot=snapshot),
                batch_size=batch_size,
            )
        if isinstance(plan, LogicalSort):
            child = self._physical(plan.child, resolver, runtime, profile,
                                      snapshot=snapshot)
            key_fns = compile_all(plan.keys, plan.child.schema)
            return Sort(
                child, key_fns, plan.descending, batch_size=batch_size
            )
        if isinstance(plan, LogicalLimit):
            return Limit(
                self._physical(plan.child, resolver, runtime, profile,
                               snapshot=snapshot),
                plan.limit,
                batch_size=batch_size,
            )
        raise ExecutionError(f"no physical operator for {type(plan).__name__}")

    # -- DDL ------------------------------------------------------------------------

    def _create_table(self, statement: A.CreateTable) -> QueryResult:
        if self.db.catalog.has_table(statement.name):
            raise PlanError(f"table {statement.name!r} already exists")
        heap = HeapFile.create(self.db.pool)
        table = TableInfo(
            name=statement.name,
            columns=[
                CatColumn(c.name, c.sql_type.storage_type, c.nullable)
                for c in statement.columns
            ],
            first_page=heap.first_page,
        )
        self.db.catalog.add_table(table)
        return QueryResult()

    def _drop_table(self, statement: A.DropTable) -> QueryResult:
        table = self.db.catalog.get_table(statement.name)
        heap = HeapFile(self.db.pool, table.first_page)
        types = table.column_types()
        from ..storage.record import deserialize_record

        for __, record in heap.scan():
            for value in deserialize_record(record, types):
                if isinstance(value, LOBRef):
                    self.db.lobs.free(value)
        heap.drop()
        self.db.catalog.drop_table(statement.name)
        return QueryResult()

    def _create_index(self, statement: A.CreateIndex) -> QueryResult:
        table = self.db.catalog.get_table(statement.table)
        position = table.column_index(statement.column)
        if table.columns[position].col_type is not ColumnType.INT:
            raise PlanError("indexes are supported on INT columns only")
        if any(i.name.lower() == statement.name.lower() for i in table.indexes):
            raise PlanError(f"index {statement.name!r} already exists")
        tree = BPlusTree.create(self.db.pool)
        heap = HeapFile(self.db.pool, table.first_page)
        from ..storage.record import deserialize_record

        types = table.column_types()
        for rid, record in heap.scan():
            key = deserialize_record(record, types)[position]
            if key is not None:
                tree.insert(key, rid)
        table.indexes.append(
            IndexInfo(statement.name, statement.column, tree.root_page)
        )
        self.db.catalog.save()
        return QueryResult()

    def _create_function(self, statement: A.CreateFunction) -> QueryResult:
        from ..core.designs import Design
        from ..core.udf import CostHints, UDFDefinition, UDFSignature

        design = Design(statement.design)
        if statement.language != design.language:
            raise PlanError(
                f"LANGUAGE {statement.language.upper()} does not match "
                f"DESIGN {statement.design.upper()}"
            )
        if design.is_sandboxed:
            entry = statement.entry or statement.name
        else:
            __, __, func_name = statement.payload.partition(":")
            entry = statement.entry or func_name
        if statement.cost is None and statement.selectivity is None:
            # No declared hints: let the registry derive them from the
            # analyzer's static summary (sandboxed designs only).
            hints = None
        else:
            hints = CostHints(
                cost_per_call=(
                    statement.cost if statement.cost is not None else 1000.0
                ),
                selectivity=(
                    statement.selectivity
                    if statement.selectivity is not None else 0.5
                ),
            )
        definition = UDFDefinition(
            name=statement.name,
            signature=UDFSignature(statement.param_types, statement.ret_type),
            design=design,
            payload=statement.payload.encode("utf-8"),
            entry=entry,
            callbacks=statement.callbacks,
            cost=hints,
            fuel=statement.fuel,
            memory=statement.memory,
        )
        self.db.register_udf(definition)
        return QueryResult()

    def _drop_function(self, statement: A.DropFunction) -> QueryResult:
        self.db.unregister_udf(statement.name)
        return QueryResult()

    # -- DML ---------------------------------------------------------------------------

    def _insert(self, statement: A.Insert) -> QueryResult:
        table = self.db.catalog.get_table(statement.table)
        if statement.columns:
            positions = [table.column_index(c) for c in statement.columns]
        else:
            positions = list(range(len(table.columns)))
        empty = _EMPTY_SCHEMA
        resolver = FunctionResolver()
        runtime = QueryRuntime(lobs=self.db.lobs)
        count = 0
        # All rows of one INSERT go in under one hold of the table's
        # write lock and *without* per-row snapshot installs: the
        # statement-level install happens once when the statement
        # finishes, so snapshot readers see a multi-row INSERT
        # atomically.  (Reentrant: the write pipeline already holds it.)
        with self.db.table_write_lock(table.name):
            for value_exprs in statement.rows:
                if len(value_exprs) != len(positions):
                    raise PlanError(
                        f"INSERT supplies {len(value_exprs)} values for "
                        f"{len(positions)} columns"
                    )
                values: List[object] = [None] * len(table.columns)
                provided = [False] * len(table.columns)
                for position, expr in zip(positions, value_exprs):
                    fn = compile_expr(expr, empty, resolver, runtime)
                    values[position] = fn([])
                    provided[position] = True
                self.db._insert_row_locked(table, values)
                count += 1
        return QueryResult(rowcount=count)

    def _collect_matches(
        self, table: TableInfo, where: Optional[A.Expr]
    ) -> List[Tuple[object, List[object]]]:
        from ..storage.record import deserialize_record

        heap = HeapFile(self.db.pool, table.first_page)
        types = table.column_types()
        binding = self.db.broker.bind()
        resolver = _QueryUDFResolver(self.db.registry, binding)
        runtime = QueryRuntime(lobs=self.db.lobs, binding=binding)
        try:
            predicate = None
            if where is not None:
                from .planner import qualify
                from .types import schema_for_table

                schema = schema_for_table(table)
                predicate = compile_expr(
                    qualify(where, schema), schema, resolver, runtime
                )
            matches = []
            for rid, record in heap.scan():
                row = deserialize_record(record, types)
                if predicate is None or predicate(row) is True:
                    matches.append((rid, row))
            return matches
        finally:
            resolver.finish()

    def _delete(self, statement: A.Delete) -> QueryResult:
        table = self.db.catalog.get_table(statement.table)
        matches = self._collect_matches(table, statement.where)
        heap = HeapFile(self.db.pool, table.first_page)
        for rid, row in matches:
            for value in row:
                if isinstance(value, LOBRef):
                    self.db.lobs.free(value)
            self._index_remove(table, rid, row)
            heap.delete(rid)
        return QueryResult(rowcount=len(matches))

    def _update(self, statement: A.Update) -> QueryResult:
        table = self.db.catalog.get_table(statement.table)
        matches = self._collect_matches(table, statement.where)
        heap = HeapFile(self.db.pool, table.first_page)
        from .planner import qualify
        from .types import schema_for_table

        schema = schema_for_table(table)
        binding = self.db.broker.bind()
        resolver = _QueryUDFResolver(self.db.registry, binding)
        runtime = QueryRuntime(lobs=self.db.lobs, binding=binding)
        try:
            assignments = [
                (
                    table.column_index(name),
                    compile_expr(qualify(expr, schema), schema, resolver, runtime),
                )
                for name, expr in statement.assignments
            ]
            for rid, row in matches:
                new_row = list(row)
                for position, fn in assignments:
                    old = new_row[position]
                    new_value = fn(row)
                    if isinstance(old, LOBRef):
                        self.db.lobs.free(old)
                    new_row[position] = new_value
                self._index_remove(table, rid, row)
                record = self.db.encode_row(table, new_row)
                new_rid = heap.update(rid, record)
                self._index_add(table, new_rid, new_row)
        finally:
            resolver.finish()
        return QueryResult(rowcount=len(matches))

    # -- index maintenance -----------------------------------------------------------------

    def _index_add(self, table: TableInfo, rid, row: Sequence[object]) -> None:
        for info in table.indexes:
            key = row[table.column_index(info.column)]
            if key is None:
                continue
            tree = BPlusTree(self.db.pool, info.root_page)
            tree.insert(key, rid)
            if tree.root_page != info.root_page:
                info.root_page = tree.root_page
                self.db.catalog.save()

    def _index_remove(self, table: TableInfo, rid, row: Sequence[object]) -> None:
        for info in table.indexes:
            key = row[table.column_index(info.column)]
            if key is None:
                continue
            BPlusTree(self.db.pool, info.root_page).delete(key, rid)


from .types import RowSchema

_EMPTY_SCHEMA = RowSchema([])
