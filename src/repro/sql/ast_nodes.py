"""SQL abstract syntax trees (statements and expressions).

Pure data: the parser builds these, the planner consumes them.  Named
``ast_nodes`` (not ``ast``) so the compiler's use of the stdlib ``ast``
module can never be shadowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import ColumnDef

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int | float | bool | str | None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # + - * / % = != < <= > >= and or like
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # - not
    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call: builtin scalar, aggregate, or UDF — resolved by
    the planner, not the parser."""

    name: str
    args: Tuple[Expr, ...]
    star: bool = False  # COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: ``CASE WHEN cond THEN value ... ELSE default END``.

    Produced by the UDF decompiler (if/else bodies lower to CASE), not
    the parser.  Evaluation is short-circuit: a branch's value is only
    computed for rows whose condition held, so trapping expressions
    guarded by a condition stay guarded.
    """

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None
    #: The flow certifier proved no branch expression can trap (no
    #: division by a possibly-zero value, no unproven index).  Batch
    #: evaluation may then run every branch over the full row set and
    #: select, instead of partitioning rows behind each guard.
    trap_safe: bool = False


@dataclass(frozen=True)
class ParamRef(Expr):
    """Positional parameter placeholder inside an inline template.

    Only appears in :class:`~repro.analysis.decompile.InlineTemplate`
    bodies; the optimizer substitutes argument expressions before any
    template reaches the expression compiler.
    """

    index: int


@dataclass(frozen=True)
class Inlined(Expr):
    """A UDF call site replaced by its decompiled body.

    Transparent to evaluation; keeps the originating UDF's name so
    EXPLAIN can mark the site ``inlined`` and the query profile can
    count inlined calls without a VM entry.
    """

    name: str
    body: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def label(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: Tuple[ColumnDef, ...]


@dataclass(frozen=True)
class DropTable(Statement):
    name: str


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    column: str


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: Tuple[str, ...]  # empty = all, in table order
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateFunction(Statement):
    """CREATE FUNCTION name(type, ...) RETURNS type LANGUAGE ... DESIGN ...

    ``payload`` is the quoted body: JagScript source for LANGUAGE
    JAGUAR, a ``module:function`` path for LANGUAGE NATIVE.
    """

    name: str
    param_types: Tuple[str, ...]
    ret_type: str
    language: str
    design: str
    payload: str
    entry: Optional[str] = None
    callbacks: Tuple[str, ...] = ()
    cost: Optional[float] = None
    selectivity: Optional[float] = None
    fuel: Optional[int] = None
    memory: Optional[int] = None


@dataclass(frozen=True)
class DropFunction(Statement):
    name: str


@dataclass(frozen=True)
class Explain(Statement):
    """EXPLAIN [ANALYZE] SELECT ...: show the optimized plan.

    Plain EXPLAIN plans without executing; EXPLAIN ANALYZE also runs the
    query and annotates every operator with the rows/batches/time it
    actually produced plus a per-UDF profile section.
    """

    select: Select
    analyze: bool = False
