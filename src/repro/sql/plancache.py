"""Shared prepared-plan cache for the concurrent server.

Planning a statement is not free: parse, name resolution, optimization
(predicate ordering, index selection, UDF inlining — re-walking the
decompiler's templates every time).  Sessions issuing the same statement
repeatedly — the common case for the paper's "millions of users" load
shape — should pay that once.  The cache maps

    (SQL text, fingerprint) -> (parsed statement, optimized LogicalPlan)

where the *fingerprint* is ``Database.settings_fingerprint()``: the
catalog's schema epoch plus every plan-affecting setting (parallelism,
inlining).  DDL and CREATE/DROP FUNCTION bump the epoch, so stale plans
can never hit again — invalidation is structural, not advisory; the
superseded entries are dropped eagerly on the next store of the same
text and counted as ``invalidations``.

Cached logical plans are execution-state free (expression closures, UDF
executors, and physical operators are built fresh per execution), so one
entry may be *read* by any number of concurrent statements.  Adaptive
optimization re-plans per query by design and bypasses this cache
entirely (the caller's responsibility — see ``Database.execute_read``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

DEFAULT_PLAN_CACHE_CAPACITY = 256


class PlanCache:
    """Bounded, thread-safe LRU of prepared statements."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def lookup(self, sql: str, fingerprint: tuple) -> Optional[Tuple]:
        """The cached ``(statement, plan)`` pair, or None on a miss."""
        key = (sql, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, sql: str, fingerprint: tuple, statement, plan) -> None:
        key = (sql, fingerprint)
        with self._lock:
            # Entries for the same text under an older fingerprint
            # (schema epoch bumped, settings changed) can never hit
            # again — drop them now instead of waiting for LRU churn.
            stale = [
                other for other in self._entries
                if other[0] == sql and other != key
            ]
            for other in stale:
                del self._entries[other]
                self.invalidations += 1
            self._entries[key] = (statement, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
