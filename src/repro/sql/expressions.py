"""Expression compilation and evaluation.

SQL expressions compile to Python closures over the row (a plain list of
values), once per query — not interpreted per tuple.  Three-valued NULL
logic follows SQL: NULL propagates through arithmetic and comparisons,
``AND``/``OR`` use Kleene logic, and WHERE treats NULL as false.

UDF invocation happens here: a :class:`UDFCallSite` closes over the
executor chosen for the query (one of the six designs) and the argument
closures.  Byte-array arguments are materialized from LOB storage when
the UDF takes them *by value*; parameters declared ``handle`` instead
register the object with the query's callback binding and pass a small
integer — the two access strategies whose trade-off Section 5.5
measures.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, PlanError
from ..storage.lob import LOBRef
from ..vm.values import INT_MAX, INT_MIN, wrap_int
from . import ast_nodes as A
from .types import RowSchema, SQLType

EvalFn = Callable[[Sequence[object]], object]

#: Aggregate function names (handled by the Aggregate operator, never
#: compiled as scalar calls).
AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def eval_batch(fn: EvalFn, rows: Sequence[Sequence[object]]) -> List[object]:
    """Evaluate a compiled expression over a batch of rows.

    Expressions that carry a vectorized entry point (``fn.eval_batch``)
    — UDF call sites and the operators composed over them — evaluate the
    whole batch at once, amortizing per-invocation overhead; everything
    else falls back to one Python-level loop over the per-row closure.
    """
    batch_fn = getattr(fn, "eval_batch", None)
    if batch_fn is not None:
        return batch_fn(rows)
    return [fn(row) for row in rows]


def _attach_batch(fn: EvalFn, children: Sequence[EvalFn],
                  combine: Callable) -> EvalFn:
    """Give ``fn`` a batch entry point when any child has one.

    ``combine`` maps one value per child to the node's result.  Plain
    column/literal trees stay un-annotated so the scalar fast path is
    untouched; only trees that actually contain a batchable node (a UDF
    call site) grow the vectorized form.
    """
    if any(getattr(child, "eval_batch", None) is not None
           for child in children):
        def batch(rows):
            columns = [eval_batch(child, rows) for child in children]
            return [combine(*values) for values in zip(*columns)]

        fn.eval_batch = batch
    return fn


class QueryRuntime:
    """Per-query services expression evaluation needs.

    * LOB materialization for by-value byte arguments;
    * handle registration for handle-mode UDF arguments;
    * the UDF executors selected for this query.
    """

    def __init__(self, lobs=None, binding=None):
        self.lobs = lobs
        self.binding = binding
        self._next_handle = 1
        self.udf_executors = {}

    def materialize(self, value: object) -> object:
        """Resolve a stored LOB reference into bytes (by-value access)."""
        if isinstance(value, LOBRef):
            if self.lobs is None:
                raise ExecutionError(
                    "LOB value encountered without a LOB manager"
                )
            return self.lobs.read(value)
        return value

    def make_handle(self, value: object) -> int:
        """Register an object for callback access; returns the handle."""
        if self.binding is None:
            raise ExecutionError(
                "handle-mode UDF argument without a callback binding"
            )
        if isinstance(value, LOBRef):
            if self.lobs is None:
                raise ExecutionError("LOB handle without a LOB manager")
            value = self.lobs.handle(value)
        handle = self._next_handle
        self._next_handle += 1
        self.binding.add_handle(handle, value)
        return handle


class UDFCallSite:
    """A compiled UDF call within an expression.

    Call sites of UDFs the load-time analyzer proved *pure* memoize
    results by argument tuple: repeated values in a column (the common
    case for low-cardinality predicates) then cost one sandbox crossing
    per distinct value instead of one per tuple.  The cache lives and
    dies with the call site, i.e. with one query's compiled expression.
    The memo is adaptive: once enough probes have gone by without a
    single hit (a high-cardinality argument column), it is dropped for
    the rest of the query so distinct-heavy scans stop paying the
    per-row hashing tax for a cache that never pays off.
    """

    __slots__ = (
        "name", "executor", "param_types", "arg_fns", "runtime", "_memo",
        "_memo_probes", "_memo_hits", "_passthrough",
    )

    #: Probes without a hit before an adaptive memo gives up (2 batches
    #: at the default batch size of 64).
    MEMO_PROBE_LIMIT = 128

    def __init__(self, name, executor, param_types, arg_fns, runtime):
        self.name = name
        self.executor = executor
        self.param_types = param_types
        self.arg_fns = arg_fns
        self.runtime = runtime
        definition = getattr(executor, "definition", None)
        pure = bool(definition is not None and
                    getattr(definition, "is_pure", False))
        self._memo: Optional[dict] = {} if pure else None
        self._memo_probes = 0
        self._memo_hits = 0
        # No bytes/handle/float parameter anywhere: a row's raw values
        # are already in argument form, so batch assembly can skip the
        # per-row _coerce_args call entirely.
        self._passthrough = not any(
            pt in ("bytes", "handle", "float") for pt in param_types
        )

    def __call__(self, row: Sequence[object]) -> object:
        args = []
        for fn, param_type in zip(self.arg_fns, self.param_types):
            value = fn(row)
            if value is None:
                return None  # strict NULL semantics for UDFs
            if param_type == "bytes":
                value = self.runtime.materialize(value)
            elif param_type == "handle":
                value = self.runtime.make_handle(value)
            elif param_type == "float" and isinstance(value, int):
                value = float(value)
            args.append(value)
        memo = self._memo
        if memo is None:
            return self.executor.invoke(args)
        try:
            key = tuple(args)
            if key in memo:
                return memo[key]
        except TypeError:  # unhashable argument (e.g. bytearray)
            return self.executor.invoke(args)
        result = self.executor.invoke(args)
        memo[key] = result
        return result

    def _coerce_args(self, raw: Sequence[object]) -> List[object]:
        """Materialize/handle/widen one row's argument values, in order."""
        args = []
        runtime = self.runtime
        for value, param_type in zip(raw, self.param_types):
            if param_type == "bytes":
                value = runtime.materialize(value)
            elif param_type == "handle":
                value = runtime.make_handle(value)
            elif param_type == "float" and isinstance(value, int):
                value = float(value)
            args.append(value)
        return args

    def eval_batch(self, rows: Sequence[Sequence[object]]) -> List[object]:
        """Evaluate the call over a batch of rows.

        Argument subexpressions are themselves evaluated batch-wise (so
        nested UDF calls amortize too), NULL rows short out without an
        invocation, pure-UDF memoization dedupes *within* the batch as
        well as across batches, and everything left crosses the design
        boundary in one :meth:`~repro.core.factory.UDFExecutor.invoke_batch`
        call — the per-invocation marshalling/IPC tax is paid once per
        batch instead of once per tuple.
        """
        arg_columns = [eval_batch(fn, rows) for fn in self.arg_fns]
        results: List[object] = [None] * len(rows)
        call_slots: List[int] = []
        call_args: List[List[object]] = []
        passthrough = self._passthrough
        if len(arg_columns) == 1:
            # Single-argument fast path: no per-row row assembly.
            for index, value in enumerate(arg_columns[0]):
                if value is None:
                    continue  # strict NULL semantics for UDFs
                call_slots.append(index)
                call_args.append(
                    [value] if passthrough else self._coerce_args([value])
                )
        else:
            for index in range(len(rows)):
                raw = [column[index] for column in arg_columns]
                if any(value is None for value in raw):
                    continue  # strict NULL semantics for UDFs
                call_slots.append(index)
                call_args.append(
                    raw if passthrough else self._coerce_args(raw)
                )
        memo = self._memo
        key_by_slot: Dict[int, tuple] = {}
        if memo is not None and call_slots:
            pending_slots: List[int] = []
            pending_args: List[List[object]] = []
            first_slot_by_key: Dict[tuple, int] = {}
            dup_of: Dict[int, int] = {}  # slot -> earlier slot, same key
            for slot, args in zip(call_slots, call_args):
                key = tuple(args)
                try:
                    if key in memo:
                        results[slot] = memo[key]
                        self._memo_hits += 1
                        continue
                    earlier = first_slot_by_key.get(key)
                except TypeError:  # unhashable argument (e.g. bytearray)
                    pending_slots.append(slot)
                    pending_args.append(args)
                    continue
                if earlier is not None:
                    dup_of[slot] = earlier
                    self._memo_hits += 1
                    continue
                first_slot_by_key[key] = slot
                key_by_slot[slot] = key
                pending_slots.append(slot)
                pending_args.append(args)
            self._memo_probes += len(call_slots)
            if (self._memo_hits == 0
                    and self._memo_probes >= self.MEMO_PROBE_LIMIT):
                self._memo = None  # adaptive: cache never pays off here
            call_slots, call_args = pending_slots, pending_args
        else:
            dup_of = {}
        if call_args:
            values = self.executor.invoke_batch(call_args)
            for slot, value in zip(call_slots, values):
                results[slot] = value
                if memo is not None:
                    key = key_by_slot.get(slot)
                    if key is not None:
                        memo[key] = value
        for slot, earlier in dup_of.items():
            results[slot] = results[earlier]
        return results


class FunctionResolver:
    """Maps function names in expressions to call sites.

    The default resolver knows only built-ins; the executor subclasses
    it with UDF knowledge (registry + per-query executors).
    """

    def resolve_udf(self, name: str):
        """Return (executor, param_type_names) or None."""
        return None

    def udf_ret_type(self, name: str) -> Optional[str]:
        """SQL-facing return type name of a registered UDF, or None.

        Used by type inference at planning time.  The default derives it
        from :meth:`resolve_udf`; resolvers backed by a registry override
        this to answer without instantiating an executor (an inlined
        call site must not spawn a per-query process just to be typed).
        """
        udf = self.resolve_udf(name)
        if udf is None:
            return None
        executor, __ = udf
        return executor.definition.signature.ret_type


def compile_expr(
    expr: A.Expr,
    schema: RowSchema,
    resolver: Optional[FunctionResolver] = None,
    runtime: Optional[QueryRuntime] = None,
) -> EvalFn:
    """Compile an expression into a row -> value closure."""
    resolver = resolver or FunctionResolver()
    runtime = runtime or QueryRuntime()
    return _compile(expr, schema, resolver, runtime)


def _compile(expr, schema, resolver, runtime) -> EvalFn:
    if isinstance(expr, A.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, A.ColumnRef):
        index = schema.resolve(expr.name, expr.table)
        return lambda row: row[index]
    if isinstance(expr, A.BinaryOp):
        return _compile_binary(expr, schema, resolver, runtime)
    if isinstance(expr, A.UnaryOp):
        operand = _compile(expr.operand, schema, resolver, runtime)
        if expr.op == "-":
            return _attach_batch(
                lambda row: None if (v := operand(row)) is None else -v,
                [operand],
                lambda v: None if v is None else -v,
            )
        if expr.op == "not":
            def negate(row):
                value = operand(row)
                return None if value is None else not value
            return _attach_batch(
                negate, [operand],
                lambda v: None if v is None else not v,
            )
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, A.IsNull):
        operand = _compile(expr.operand, schema, resolver, runtime)
        if expr.negated:
            return _attach_batch(
                lambda row: operand(row) is not None,
                [operand], lambda v: v is not None,
            )
        return _attach_batch(
            lambda row: operand(row) is None,
            [operand], lambda v: v is None,
        )
    if isinstance(expr, A.Between):
        operand = _compile(expr.operand, schema, resolver, runtime)
        low = _compile(expr.low, schema, resolver, runtime)
        high = _compile(expr.high, schema, resolver, runtime)
        negated = expr.negated

        def between_values(value, lo, hi):
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if negated else result

        def between(row):
            return between_values(operand(row), low(row), high(row))

        return _attach_batch(between, [operand, low, high], between_values)
    if isinstance(expr, A.InList):
        operand = _compile(expr.operand, schema, resolver, runtime)
        items = [_compile(item, schema, resolver, runtime)
                 for item in expr.items]
        negated = expr.negated

        def in_values(value, *item_values):
            if value is None:
                return None
            found = any(item == value for item in item_values)
            return (not found) if negated else found

        def in_list(row):
            value = operand(row)
            if value is None:
                return None
            found = any(fn(row) == value for fn in items)
            return (not found) if negated else found

        return _attach_batch(in_list, [operand] + items, in_values)
    if isinstance(expr, A.FuncCall):
        return _compile_call(expr, schema, resolver, runtime)
    if isinstance(expr, A.Case):
        return _compile_case(expr, schema, resolver, runtime)
    if isinstance(expr, A.Inlined):
        return _compile_inlined(expr, schema, resolver, runtime)
    if isinstance(expr, A.ParamRef):
        raise PlanError(
            f"unsubstituted inline-template parameter ${expr.index + 1}"
        )
    if isinstance(expr, A.Star):
        raise PlanError("'*' is only valid in SELECT lists and COUNT(*)")
    raise PlanError(f"cannot compile expression {expr!r}")


def _compile_case(expr: A.Case, schema, resolver, runtime) -> EvalFn:
    when_fns = [
        (_compile(cond, schema, resolver, runtime),
         _compile(value, schema, resolver, runtime))
        for cond, value in expr.whens
    ]
    default_fn = (
        _compile(expr.default, schema, resolver, runtime)
        if expr.default is not None else None
    )

    if len(when_fns) == 1 and default_fn is not None:
        # The common shape — notably the NULL guard wrapped around
        # every inlined UDF body — deserves a branch, not a loop.
        ((cond_fn, value_fn),) = when_fns

        def case(row):
            return value_fn(row) if cond_fn(row) is True else default_fn(row)
    else:
        def case(row):
            for cond_fn, value_fn in when_fns:
                if cond_fn(row) is True:
                    return value_fn(row)
            return default_fn(row) if default_fn is not None else None

    children = [fn for pair in when_fns for fn in pair]
    if default_fn is not None:
        children.append(default_fn)
    if any(getattr(child, "eval_batch", None) is not None
           for child in children):
        if expr.trap_safe and len(when_fns) == 1 and default_fn is not None:
            # Trap-free fast path (flow-certified): no branch can trap,
            # and every scalar op / builtin is NULL-strict, so running
            # both branches over the whole batch and selecting per row
            # is observationally identical to partitioning — minus the
            # per-branch row-list rebuilds.
            ((cond_fn0, value_fn0),) = when_fns

            def case_batch_trapfree(rows):
                conds = eval_batch(cond_fn0, rows)
                defaults = eval_batch(default_fn, rows)
                if True not in conds:
                    # Nobody took the WHEN branch (for the inliner's
                    # NULL guard: a batch with no NULL arguments) — the
                    # defaults ARE the results, no per-row selection.
                    return defaults
                values = eval_batch(value_fn0, rows)
                return [
                    v if c is True else d
                    for c, v, d in zip(conds, values, defaults)
                ]

            case.eval_batch = case_batch_trapfree
            return case

        # Short-circuit batch form: each branch value is evaluated only
        # on the rows whose condition selected it (mirroring the scalar
        # path), so trapping expressions stay behind their guards.
        def case_batch(rows):
            results: List[object] = [None] * len(rows)
            pending = list(range(len(rows)))
            for cond_fn, value_fn in when_fns:
                if not pending:
                    break
                conds = eval_batch(cond_fn, [rows[i] for i in pending])
                taken = [i for i, c in zip(pending, conds) if c is True]
                pending = [i for i, c in zip(pending, conds)
                           if c is not True]
                if taken:
                    values = eval_batch(value_fn, [rows[i] for i in taken])
                    for i, value in zip(taken, values):
                        results[i] = value
            if pending and default_fn is not None:
                values = eval_batch(default_fn, [rows[i] for i in pending])
                for i, value in zip(pending, values):
                    results[i] = value
            return results

        case.eval_batch = case_batch
    return case


def _compile_inlined(expr: A.Inlined, schema, resolver, runtime) -> EvalFn:
    body = _compile(expr.body, schema, resolver, runtime)
    profile = getattr(resolver, "profile", None)
    counter = (
        profile.inlined(expr.name) if profile is not None else None
    )
    if counter is None:
        return body  # fully transparent: the body *is* the call

    def inlined(row):
        counter.inc(1)
        return body(row)

    def inlined_batch(rows):
        counter.inc(len(rows))
        return eval_batch(body, rows)

    inlined.eval_batch = inlined_batch
    return inlined


def _compile_binary(expr, schema, resolver, runtime) -> EvalFn:
    op = expr.op
    left = _compile(expr.left, schema, resolver, runtime)
    right = _compile(expr.right, schema, resolver, runtime)

    if op == "and":
        def kleene_and(row):
            a = left(row)
            if a is False:
                return False
            b = right(row)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True
        return _attach_short_circuit(
            kleene_and, left, right, short_value=False,
        )
    if op == "or":
        def kleene_or(row):
            a = left(row)
            if a is True:
                return True
            b = right(row)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False
        return _attach_short_circuit(
            kleene_or, left, right, short_value=True,
        )
    if op == "like":
        return _compile_like(left, right)

    arith = _ARITH.get(op)
    if arith is not None:
        def arith_values(a, b):
            if a is None or b is None:
                return None
            return arith(a, b)

        def arithmetic(row):
            return arith_values(left(row), right(row))
        return _attach_batch(arithmetic, [left, right], arith_values)
    compare = _COMPARE.get(op)
    if compare is not None:
        def compare_values(a, b):
            if a is None or b is None:
                return None
            return compare(a, b)

        def comparison(row):
            return compare_values(left(row), right(row))
        return _attach_batch(comparison, [left, right], compare_values)
    raise PlanError(f"unknown binary operator {op!r}")


def _attach_short_circuit(fn, left, right, short_value):
    """Batch form of Kleene AND/OR.

    The right side is evaluated only on the sub-batch the left side did
    not decide (``short_value`` is the absorbing element) — the same
    rows a per-tuple evaluation would touch, so batching never changes
    how often a UDF on the right-hand side runs.
    """
    if (getattr(left, "eval_batch", None) is None
            and getattr(right, "eval_batch", None) is None):
        return fn

    def batch(rows):
        left_values = eval_batch(left, rows)
        results = [short_value] * len(rows)
        pending = [i for i, a in enumerate(left_values)
                   if a is not short_value]
        if pending:
            right_values = eval_batch(right, [rows[i] for i in pending])
            for i, b in zip(pending, right_values):
                if b is short_value:
                    results[i] = short_value
                elif left_values[i] is None or b is None:
                    results[i] = None
                else:
                    results[i] = not short_value
        return results

    fn.eval_batch = batch
    return fn


def _sql_div(a, b):
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


def _sql_mod(a, b):
    if b == 0:
        raise ExecutionError("modulo by zero")
    return a % b


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _sql_div,
    "%": _sql_mod,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_like(left: EvalFn, right: EvalFn) -> EvalFn:
    def like_values(value, pattern):
        if value is None or pattern is None:
            return None
        regex = _like_regex(pattern)
        return regex.fullmatch(value) is not None

    def like(row):
        return like_values(left(row), right(row))

    return _attach_batch(like, [left, right], like_values)


def _like_regex(pattern: str) -> "re.Pattern":
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)


# ---------------------------------------------------------------------------
# Scalar built-ins
# ---------------------------------------------------------------------------

def _patbytes(n: int, seed: int) -> bytes:
    """Deterministic pseudo-random bytes (LCG) for workload building."""
    out = bytearray(n)
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    for index in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out[index] = (state >> 16) & 0xFF
    return bytes(out)


def _length(value) -> int:
    if isinstance(value, LOBRef):
        # Large objects know their length without being materialized.
        return value.length
    return len(value)


def _vm_idiv(a: int, b: int) -> int:
    """JaguarVM IDIV: truncation toward zero, 64-bit wraparound.

    The decompiler emits ``idiv``/``imod`` (not SQL ``/``/``%``) for the
    VM's integer division opcodes: SQL division floors while the VM
    truncates toward zero, and the results differ on negative operands.
    """
    if b == 0:
        raise ExecutionError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        quotient = -quotient
    return wrap_int(quotient)


def _vm_imod(a: int, b: int) -> int:
    """JaguarVM IMOD: ``a - idiv(a, b) * b`` (sign follows the dividend)."""
    if b == 0:
        raise ExecutionError("integer modulo by zero")
    return wrap_int(a - _vm_idiv(a, b) * b)


def _vm_trunc(x: float) -> int:
    """JaguarVM F2I: truncate toward zero; error on NaN/inf/overflow."""
    if x != x or x in (float("inf"), float("-inf")):
        raise ExecutionError(f"cannot convert {x!r} to int")
    value = int(x)
    if value < INT_MIN or value > INT_MAX:
        raise ExecutionError(f"float {x!r} out of int64 range")
    return value


_BUILTINS = {
    "abs": (1, abs),
    "length": (1, _length),
    "upper": (1, lambda s: s.upper()),
    "lower": (1, lambda s: s.lower()),
    "sqrt": (1, lambda x: float(x) ** 0.5),
    "floor": (1, lambda x: int(x // 1)),
    "ceil": (1, lambda x: int(-((-x) // 1))),
    "round": (1, lambda x: round(x)),
    "zerobytes": (1, lambda n: bytes(int(n))),
    "patbytes": (2, _patbytes),
    # VM-semantics helpers emitted by the UDF decompiler; also usable
    # directly from SQL.
    "idiv": (2, _vm_idiv),
    "imod": (2, _vm_imod),
    "float": (1, float),
    "trunc": (1, _vm_trunc),
}


def _compile_call(expr: A.FuncCall, schema, resolver, runtime) -> EvalFn:
    name = expr.name.lower()
    if name in AGGREGATE_NAMES:
        raise PlanError(
            f"aggregate {name!r} is not allowed in this context"
        )
    udf = resolver.resolve_udf(name)
    if udf is not None:
        executor, param_types = udf
        if len(expr.args) != len(param_types):
            raise PlanError(
                f"UDF {name!r} takes {len(param_types)} arguments, "
                f"got {len(expr.args)}"
            )
        arg_fns = [
            _compile(arg, schema, resolver, runtime) for arg in expr.args
        ]
        return UDFCallSite(name, executor, param_types, arg_fns, runtime)
    builtin = _BUILTINS.get(name)
    if builtin is not None:
        arity, fn = builtin
        if len(expr.args) != arity:
            raise PlanError(
                f"{name}() takes {arity} argument(s), got {len(expr.args)}"
            )
        arg_fns = [
            _compile(arg, schema, resolver, runtime) for arg in expr.args
        ]

        def call_values(*args):
            if any(a is None for a in args):
                return None
            return fn(*args)

        def call(row):
            return call_values(*[f(row) for f in arg_fns])

        return _attach_batch(call, arg_fns, call_values)
    raise PlanError(f"unknown function {expr.name!r}")


# ---------------------------------------------------------------------------
# Light type inference (for output schemas)
# ---------------------------------------------------------------------------

def infer_type(
    expr: A.Expr, schema: RowSchema, resolver: Optional[FunctionResolver] = None
) -> SQLType:
    """Best-effort static type; falls back to NULL for unknowns."""
    if isinstance(expr, A.Literal):
        value = expr.value
        if isinstance(value, bool):
            return SQLType.BOOL
        if isinstance(value, int):
            return SQLType.INT
        if isinstance(value, float):
            return SQLType.FLOAT
        if isinstance(value, str):
            return SQLType.STRING
        return SQLType.NULL
    if isinstance(expr, A.ColumnRef):
        index = schema.resolve(expr.name, expr.table)
        return schema.columns[index].sql_type
    if isinstance(expr, A.BinaryOp):
        if expr.op in ("and", "or", "like") or expr.op in _COMPARE:
            return SQLType.BOOL
        left = infer_type(expr.left, schema, resolver)
        right = infer_type(expr.right, schema, resolver)
        if SQLType.FLOAT in (left, right):
            return SQLType.FLOAT
        if left is SQLType.INT and right is SQLType.INT:
            return SQLType.INT
        return left if left is not SQLType.NULL else right
    if isinstance(expr, A.UnaryOp):
        if expr.op == "not":
            return SQLType.BOOL
        return infer_type(expr.operand, schema, resolver)
    if isinstance(expr, (A.IsNull, A.Between, A.InList)):
        return SQLType.BOOL
    if isinstance(expr, A.FuncCall):
        return _infer_call_type(expr, resolver)
    if isinstance(expr, A.Case):
        for __, value in expr.whens:
            inferred = infer_type(value, schema, resolver)
            if inferred is not SQLType.NULL:
                return inferred
        if expr.default is not None:
            return infer_type(expr.default, schema, resolver)
        return SQLType.NULL
    if isinstance(expr, A.Inlined):
        return infer_type(expr.body, schema, resolver)
    return SQLType.NULL


_UDF_RESULT_TYPES = {
    "int": SQLType.INT,
    "float": SQLType.FLOAT,
    "bool": SQLType.BOOL,
    "str": SQLType.STRING,
    "bytes": SQLType.BYTES,
    "farr": SQLType.FLOATARR,
    "handle": SQLType.INT,
}

_BUILTIN_RESULT_TYPES = {
    "abs": SQLType.FLOAT,
    "length": SQLType.INT,
    "upper": SQLType.STRING,
    "lower": SQLType.STRING,
    "sqrt": SQLType.FLOAT,
    "floor": SQLType.INT,
    "ceil": SQLType.INT,
    "round": SQLType.INT,
    "zerobytes": SQLType.BYTES,
    "patbytes": SQLType.BYTES,
    "idiv": SQLType.INT,
    "imod": SQLType.INT,
    "float": SQLType.FLOAT,
    "trunc": SQLType.INT,
}


def _infer_call_type(expr: A.FuncCall, resolver) -> SQLType:
    name = expr.name.lower()
    if name == "count":
        return SQLType.INT
    if name in ("sum", "avg", "min", "max"):
        return SQLType.FLOAT
    if resolver is not None:
        ret = resolver.udf_ret_type(name)
        if ret is not None:
            return _UDF_RESULT_TYPES.get(ret, SQLType.NULL)
    return _BUILTIN_RESULT_TYPES.get(name, SQLType.NULL)
