"""SQL tokenizer.

Hand-rolled single-pass scanner.  Keywords and identifiers are
case-insensitive (identifiers are lowered); string literals use single
quotes with ``''`` as the escape, and ``--`` starts a line comment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by order asc desc limit and or not null is
    insert into values update set delete create drop table index on
    function returns language design entry callbacks cost selectivity as
    true false distinct count sum avg min max like between in exists
    inner join cross using fuel memory explain analyze
    """.split()
)

#: Multi-character operators first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/",
              "%", "(", ")", ",", ";", ".")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "-" and text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if char == "'":
            value, pos = _scan_string(text, pos)
            tokens.append(Token(TokenType.STRING, value, pos))
            continue
        if char.isdigit() or (
            char == "." and pos + 1 < length and text[pos + 1].isdigit()
        ):
            token, pos = _scan_number(text, pos)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos].lower()
            token_type = (
                TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            )
            tokens.append(Token(token_type, word, start))
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(TokenType.OP, op, pos))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", pos)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _scan_string(text: str, pos: int) -> tuple:
    start = pos
    pos += 1
    parts: List[str] = []
    while pos < len(text):
        char = text[pos]
        if char == "'":
            if text.startswith("''", pos):
                parts.append("'")
                pos += 2
                continue
            return "".join(parts), pos + 1
        parts.append(char)
        pos += 1
    raise LexError("unterminated string literal", start)


def _scan_number(text: str, pos: int) -> tuple:
    start = pos
    length = len(text)
    seen_dot = False
    seen_exp = False
    while pos < length:
        char = text[pos]
        if char.isdigit():
            pos += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            pos += 1
        elif char in "eE" and not seen_exp and pos + 1 < length and (
            text[pos + 1].isdigit()
            or (text[pos + 1] in "+-" and pos + 2 < length
                and text[pos + 2].isdigit())
        ):
            seen_exp = True
            pos += 2 if text[pos + 1] in "+-" else 1
        else:
            break
    literal = text[start:pos]
    if seen_dot or seen_exp:
        return Token(TokenType.FLOAT, literal, start), pos
    return Token(TokenType.INT, literal, start), pos
