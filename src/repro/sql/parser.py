"""Recursive-descent SQL parser.

Produces :mod:`repro.sql.ast_nodes` trees.  The grammar is classic SQL
plus this system's extensibility DDL::

    CREATE FUNCTION name(param_type, ...) RETURNS type
        LANGUAGE {NATIVE | JAGUAR}
        DESIGN {INTEGRATED | SFI | ISOLATED | SANDBOX | SANDBOX_INTERP
                | SANDBOX_ISOLATED}
        [ENTRY 'function_name']
        [CALLBACKS 'cb_a', 'cb_b']
        [COST n] [SELECTIVITY x] [FUEL n] [MEMORY n]
        AS 'payload'

which is how the paper's users register UDFs (the payload being
JagScript source or a classfile migrated from the client).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from . import ast_nodes as A
from .lexer import Token, TokenType, tokenize
from .types import ColumnDef, sql_type_from_name

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}

#: SQL design names -> repro.core.designs.Design values.
DESIGN_NAMES = {
    "integrated": "native_integrated",
    "sfi": "native_sfi",
    "isolated": "native_isolated",
    "sandbox": "sandbox_jit",
    "sandbox_jit": "sandbox_jit",
    "sandbox_interp": "sandbox_interp",
    "sandbox_isolated": "sandbox_isolated",
}

#: UDF parameter type spellings -> repro.core.udf names.
UDF_TYPE_NAMES = {
    "int": "int", "integer": "int", "bigint": "int",
    "float": "float", "double": "float", "real": "float",
    "bool": "bool", "boolean": "bool",
    "str": "str", "string": "str", "varchar": "str", "text": "str",
    "bytes": "bytes", "bytearray": "bytes", "bytea": "bytes",
    "blob": "bytes",
    "farr": "farr", "floatarray": "farr", "timeseries": "farr",
    "handle": "handle",
}


def parse_statement(text: str) -> A.Statement:
    """Parse exactly one statement."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.accept_op(";")
    parser.expect_eof()
    return statement


def parse_script(text: str) -> List[A.Statement]:
    """Parse a semicolon-separated script."""
    parser = _Parser(tokenize(text))
    statements: List[A.Statement] = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.accept_op(";"):
            break
    parser.expect_eof()
    return statements


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.current.type is TokenType.EOF

    def error(self, message: str) -> ParseError:
        return ParseError(
            f"{message} (near {self.current.value!r})", self.current.position
        )

    def accept_kw(self, *words: str) -> Optional[str]:
        if self.current.type is TokenType.KEYWORD and self.current.value in words:
            return self.advance().value
        return None

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            raise self.error(f"expected {word.upper()}")

    def accept_op(self, op: str) -> bool:
        if self.current.matches(TokenType.OP, op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}")

    def expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        # Non-reserved use of soft keywords as identifiers.
        if self.current.type is TokenType.KEYWORD and self.current.value in (
            "count", "sum", "avg", "min", "max", "language", "design",
            "entry", "cost", "selectivity", "fuel", "memory", "index",
        ):
            return self.advance().value
        raise self.error("expected identifier")

    def expect_string(self) -> str:
        if self.current.type is TokenType.STRING:
            return self.advance().value
        raise self.error("expected string literal")

    def expect_int(self) -> int:
        if self.current.type is TokenType.INT:
            return int(self.advance().value)
        raise self.error("expected integer literal")

    def expect_number(self) -> float:
        if self.current.type in (TokenType.INT, TokenType.FLOAT):
            return float(self.advance().value)
        raise self.error("expected numeric literal")

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    # -- statements --------------------------------------------------------------

    def statement(self) -> A.Statement:
        if self.accept_kw("explain"):
            analyze = bool(self.accept_kw("analyze"))
            self.expect_kw("select")
            return A.Explain(self.select(), analyze=analyze)
        if self.accept_kw("select"):
            return self.select()
        if self.accept_kw("create"):
            if self.accept_kw("table"):
                return self.create_table()
            if self.accept_kw("index"):
                return self.create_index()
            if self.accept_kw("function"):
                return self.create_function()
            raise self.error("expected TABLE, INDEX, or FUNCTION")
        if self.accept_kw("drop"):
            if self.accept_kw("table"):
                return A.DropTable(self.expect_ident())
            if self.accept_kw("function"):
                return A.DropFunction(self.expect_ident())
            raise self.error("expected TABLE or FUNCTION")
        if self.accept_kw("insert"):
            return self.insert()
        if self.accept_kw("update"):
            return self.update()
        if self.accept_kw("delete"):
            return self.delete()
        raise self.error("expected a statement")

    def select(self) -> A.Select:
        distinct = bool(self.accept_kw("distinct"))
        items = [self.select_item()]
        while self.accept_op(","):
            items.append(self.select_item())
        self.expect_kw("from")
        tables = [self.table_ref()]
        join_conditions: List[A.Expr] = []
        while True:
            if self.accept_op(","):
                tables.append(self.table_ref())
            elif self.accept_kw("cross"):
                self.expect_kw("join")
                tables.append(self.table_ref())
            elif self.accept_kw("inner") or self.accept_kw("join"):
                # INNER JOIN or bare JOIN; the INNER path still needs JOIN.
                if self.tokens[self.pos - 1].value == "inner":
                    self.expect_kw("join")
                tables.append(self.table_ref())
                self.expect_kw("on")
                join_conditions.append(self.expr())
            else:
                break
        where = self.expr() if self.accept_kw("where") else None
        for condition in join_conditions:
            where = (
                condition if where is None
                else A.BinaryOp("and", where, condition)
            )
        group_by: Tuple[A.Expr, ...] = ()
        if self.accept_kw("group"):
            self.expect_kw("by")
            exprs = [self.expr()]
            while self.accept_op(","):
                exprs.append(self.expr())
            group_by = tuple(exprs)
        order_by: Tuple[A.OrderItem, ...] = ()
        if self.accept_kw("order"):
            self.expect_kw("by")
            orders = [self.order_item()]
            while self.accept_op(","):
                orders.append(self.order_item())
            order_by = tuple(orders)
        limit = None
        if self.accept_kw("limit"):
            limit = self.expect_int()
        return A.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def select_item(self) -> A.SelectItem:
        if self.accept_op("*"):
            return A.SelectItem(A.Star())
        expr = self.expr()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return A.SelectItem(expr, alias)

    def table_ref(self) -> A.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return A.TableRef(name, alias)

    def order_item(self) -> A.OrderItem:
        expr = self.expr()
        descending = False
        if self.accept_kw("desc"):
            descending = True
        else:
            self.accept_kw("asc")
        return A.OrderItem(expr, descending)

    def create_table(self) -> A.CreateTable:
        name = self.expect_ident()
        self.expect_op("(")
        columns = [self.column_def()]
        while self.accept_op(","):
            columns.append(self.column_def())
        self.expect_op(")")
        return A.CreateTable(name, tuple(columns))

    def column_def(self) -> ColumnDef:
        name = self.expect_ident()
        type_name = self.expect_ident()
        sql_type = sql_type_from_name(type_name)
        nullable = True
        if self.accept_kw("not"):
            self.expect_kw("null")
            nullable = False
        elif self.accept_kw("null"):
            pass
        return ColumnDef(name, sql_type, nullable)

    def create_index(self) -> A.CreateIndex:
        name = self.expect_ident()
        self.expect_kw("on")
        table = self.expect_ident()
        self.expect_op("(")
        column = self.expect_ident()
        self.expect_op(")")
        return A.CreateIndex(name, table, column)

    def insert(self) -> A.Insert:
        self.expect_kw("into")
        table = self.expect_ident()
        columns: Tuple[str, ...] = ()
        if self.accept_op("("):
            names = [self.expect_ident()]
            while self.accept_op(","):
                names.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(names)
        self.expect_kw("values")
        rows = [self.value_tuple()]
        while self.accept_op(","):
            rows.append(self.value_tuple())
        return A.Insert(table, columns, tuple(rows))

    def value_tuple(self) -> Tuple[A.Expr, ...]:
        self.expect_op("(")
        values = [self.expr()]
        while self.accept_op(","):
            values.append(self.expr())
        self.expect_op(")")
        return tuple(values)

    def update(self) -> A.Update:
        table = self.expect_ident()
        self.expect_kw("set")
        assignments = [self.assignment()]
        while self.accept_op(","):
            assignments.append(self.assignment())
        where = self.expr() if self.accept_kw("where") else None
        return A.Update(table, tuple(assignments), where)

    def assignment(self) -> Tuple[str, A.Expr]:
        name = self.expect_ident()
        self.expect_op("=")
        return name, self.expr()

    def delete(self) -> A.Delete:
        self.expect_kw("from")
        table = self.expect_ident()
        where = self.expr() if self.accept_kw("where") else None
        return A.Delete(table, where)

    def create_function(self) -> A.CreateFunction:
        name = self.expect_ident()
        self.expect_op("(")
        param_types: List[str] = []
        if not self.accept_op(")"):
            param_types.append(self.udf_type())
            while self.accept_op(","):
                param_types.append(self.udf_type())
            self.expect_op(")")
        self.expect_kw("returns")
        ret_type = self.udf_type()
        self.expect_kw("language")
        language = self.expect_ident().lower()
        if language not in ("native", "jaguar"):
            raise self.error("LANGUAGE must be NATIVE or JAGUAR")
        self.expect_kw("design")
        design_word = self.expect_ident().lower()
        design = DESIGN_NAMES.get(design_word)
        if design is None:
            raise self.error(
                f"unknown DESIGN {design_word!r} "
                f"(one of {sorted(DESIGN_NAMES)})"
            )
        entry = None
        callbacks: Tuple[str, ...] = ()
        cost = selectivity = None
        fuel = memory = None
        while True:
            if self.accept_kw("entry"):
                entry = self.expect_string()
            elif self.accept_kw("callbacks"):
                names = [self.expect_string()]
                while self.accept_op(","):
                    names.append(self.expect_string())
                callbacks = tuple(names)
            elif self.accept_kw("cost"):
                cost = self.expect_number()
            elif self.accept_kw("selectivity"):
                selectivity = self.expect_number()
            elif self.accept_kw("fuel"):
                fuel = self.expect_int()
            elif self.accept_kw("memory"):
                memory = self.expect_int()
            else:
                break
        self.expect_kw("as")
        payload = self.expect_string()
        return A.CreateFunction(
            name=name,
            param_types=tuple(param_types),
            ret_type=ret_type,
            language=language,
            design=design,
            payload=payload,
            entry=entry,
            callbacks=callbacks,
            cost=cost,
            selectivity=selectivity,
            fuel=fuel,
            memory=memory,
        )

    def udf_type(self) -> str:
        word = self.expect_ident().lower()
        resolved = UDF_TYPE_NAMES.get(word)
        if resolved is None:
            raise self.error(f"unknown UDF type {word!r}")
        return resolved

    # -- expressions ------------------------------------------------------------

    def expr(self) -> A.Expr:
        return self.or_expr()

    def or_expr(self) -> A.Expr:
        left = self.and_expr()
        while self.accept_kw("or"):
            left = A.BinaryOp("or", left, self.and_expr())
        return left

    def and_expr(self) -> A.Expr:
        left = self.not_expr()
        while self.accept_kw("and"):
            left = A.BinaryOp("and", left, self.not_expr())
        return left

    def not_expr(self) -> A.Expr:
        if self.accept_kw("not"):
            return A.UnaryOp("not", self.not_expr())
        return self.predicate()

    def predicate(self) -> A.Expr:
        left = self.additive()
        if self.current.type is TokenType.OP and self.current.value in _COMPARISONS:
            op = self.advance().value
            if op == "<>":
                op = "!="
            return A.BinaryOp(op, left, self.additive())
        if self.accept_kw("is"):
            negated = bool(self.accept_kw("not"))
            self.expect_kw("null")
            return A.IsNull(left, negated)
        negated = bool(self.accept_kw("not"))
        if self.accept_kw("between"):
            low = self.additive()
            self.expect_kw("and")
            high = self.additive()
            return A.Between(left, low, high, negated)
        if self.accept_kw("in"):
            self.expect_op("(")
            items = [self.expr()]
            while self.accept_op(","):
                items.append(self.expr())
            self.expect_op(")")
            return A.InList(left, tuple(items), negated)
        if self.accept_kw("like"):
            return _negate_if(
                A.BinaryOp("like", left, self.additive()), negated
            )
        if negated:
            raise self.error("expected BETWEEN, IN, or LIKE after NOT")
        return left

    def additive(self) -> A.Expr:
        left = self.multiplicative()
        while self.current.type is TokenType.OP and self.current.value in "+-":
            op = self.advance().value
            left = A.BinaryOp(op, left, self.multiplicative())
        return left

    def multiplicative(self) -> A.Expr:
        left = self.unary()
        while self.current.type is TokenType.OP and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = A.BinaryOp(op, left, self.unary())
        return left

    def unary(self) -> A.Expr:
        if self.accept_op("-"):
            return A.UnaryOp("-", self.unary())
        if self.accept_op("+"):
            return self.unary()
        return self.primary()

    def primary(self) -> A.Expr:
        token = self.current
        if token.type is TokenType.INT:
            self.advance()
            return A.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self.advance()
            return A.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return A.Literal(token.value)
        if self.accept_kw("true"):
            return A.Literal(True)
        if self.accept_kw("false"):
            return A.Literal(False)
        if self.accept_kw("null"):
            return A.Literal(None)
        if self.accept_op("("):
            inner = self.expr()
            self.expect_op(")")
            return inner
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            return self.name_or_call()
        raise self.error("expected an expression")

    def name_or_call(self) -> A.Expr:
        aggregates = ("count", "sum", "avg", "min", "max")
        if (
            self.current.type is TokenType.KEYWORD
            and self.current.value in aggregates
        ):
            name = self.advance().value
            self.expect_op("(")
            return self.finish_call(name)
        name = self.expect_ident()
        if self.accept_op("("):
            return self.finish_call(name)
        if self.accept_op("."):
            if self.accept_op("*"):
                return A.Star(table=name)
            column = self.expect_ident()
            return A.ColumnRef(column, table=name)
        return A.ColumnRef(name)

    def finish_call(self, name: str) -> A.FuncCall:
        if self.accept_op("*"):
            self.expect_op(")")
            return A.FuncCall(name, (), star=True)
        distinct = bool(self.accept_kw("distinct"))
        args: List[A.Expr] = []
        if not self.accept_op(")"):
            args.append(self.expr())
            while self.accept_op(","):
                args.append(self.expr())
            self.expect_op(")")
        return A.FuncCall(name, tuple(args), distinct=distinct)


def _negate_if(expr: A.Expr, negated: bool) -> A.Expr:
    return A.UnaryOp("not", expr) if negated else expr
