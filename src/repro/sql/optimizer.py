"""Rule-based optimizer.

Four rewrites, each motivated by the paper's setting:

1. **Predicate pushdown** — single-table conjuncts move from filters and
   joins down to their scans, so UDF predicates apply "at the early
   stages of a query evaluation plan at the server" (Section 2.2's
   stated motivation for server-side UDFs).
2. **Constant folding of pure UDFs** — a UDF the load-time analyzer
   proved pure (no callbacks, the Froid insight applied to bytecode),
   applied to all-literal arguments, is evaluated once at plan time and
   replaced by its result; the per-tuple sandbox crossing disappears
   entirely.
3. **Expensive-predicate ordering** — within each conjunct list,
   predicates are ordered by Hellerstein's rank, (selectivity - 1) /
   cost-per-tuple [Hel95, Jhi88].  Cheap selective predicates run before
   expensive UDFs, which is exactly how the paper's benchmark queries
   use "restrictive (and inexpensive) predicates in the WHERE clause"
   to control how many tuples reach the UDF.
4. **Index selection** — an equality or range conjunct over an indexed
   integer column turns the scan into a B+-tree index scan.

Cost and selectivity for UDFs come from their registration's
:class:`~repro.core.udf.CostHints` — declared by the operator, or
derived from bytecode by the static analyzer when the registration
omitted them; built-in comparisons use standard textbook heuristics.
"""

from __future__ import annotations

import dataclasses

from typing import List, Optional, Set, Tuple

from . import ast_nodes as A
from .expressions import infer_type
from .types import SQLType
from .planner import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalExchange,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)

#: Default heuristics for built-in predicate shapes.
_EQ_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 0.3
_DEFAULT_SELECTIVITY = 0.5
_BUILTIN_COST = 1.0

#: Minimum per-call cost (in the same abstract units as
#: :class:`~repro.core.udf.CostHints`) before a UDF expression is worth
#: an Exchange: cheap in-process calls lose more to thread hand-off than
#: they gain.  Isolated UDFs always count as expensive — every call pays
#: the IPC boundary regardless of declared cost.
_PARALLEL_COST_THRESHOLD = 50.0


class CostOracle:
    """Answers cost/selectivity questions about predicates.

    ``udf_hints(name)`` should return a
    :class:`~repro.core.udf.CostHints` or None; the executor wires this
    to the UDF registry.  ``udf_definition(name)`` exposes the full
    :class:`~repro.core.udf.UDFDefinition` (for purity facts) and
    ``fold_udf(name, args)`` evaluates a pure UDF at plan time — the
    base oracle knows no UDFs, so folding never triggers on it.
    """

    def udf_hints(self, name: str):
        return None

    def udf_definition(self, name: str):
        return None

    def fold_udf(self, name: str, args: List[object]) -> object:
        raise NotImplementedError(
            "this oracle cannot evaluate UDFs at plan time"
        )

    # -- inlining ---------------------------------------------------------

    def inline_template(self, name: str):
        """The UDF's :class:`~repro.analysis.decompile.InlineTemplate`,
        or None when it cannot (or must not) be inlined.  The executor's
        oracle answers from the registry when ``Database(inlining=True)``;
        the base oracle never inlines."""
        return None

    def inline_refusal(self, name: str) -> Optional[str]:
        """The refusal reason code for a non-inlinable UDF, or None.

        Only answered when inlining is enabled, so EXPLAIN output with
        inlining off is byte-identical to the seed.
        """
        return None

    # -- adaptive feedback ------------------------------------------------

    def observed_cost(self, name: str) -> Optional[float]:
        """Measured per-call cost for a UDF, or None to stay static.

        The executor's oracle wires this to the database's
        :class:`~repro.obs.adaptive.AdaptiveFeedback` store when
        ``Database(adaptive=True)``; the base oracle never adapts.
        """
        return None

    def observed_selectivity(self, key: str) -> Optional[float]:
        """Measured selectivity for a predicate (keyed by its rendered
        SQL text), or None to stay static."""
        return None

    # -- predicate metrics ------------------------------------------------

    def udf_cost(self, name: str) -> Optional[float]:
        """Per-call cost for one UDF: observed if trusted, else hinted."""
        hints = self.udf_hints(name)
        if hints is None:
            return None
        observed = self.observed_cost(name)
        return observed if observed is not None else hints.cost_per_call

    def predicate_cost(self, expr: A.Expr) -> float:
        cost = _BUILTIN_COST
        for call in _function_calls(expr):
            per_call = self.udf_cost(call.name.lower())
            if per_call is not None:
                cost += per_call
        return cost

    def predicate_selectivity(self, expr: A.Expr) -> float:
        from .explain import render_expr

        observed = self.observed_selectivity(render_expr(expr))
        if observed is not None:
            return observed
        for call in _function_calls(expr):
            hints = self.udf_hints(call.name.lower())
            if hints is not None:
                return hints.selectivity
        if isinstance(expr, A.BinaryOp):
            if expr.op == "=":
                return _EQ_SELECTIVITY
            if expr.op in ("<", "<=", ">", ">="):
                return _RANGE_SELECTIVITY
        if isinstance(expr, A.Between):
            return _RANGE_SELECTIVITY
        return _DEFAULT_SELECTIVITY

    def rank(self, expr: A.Expr) -> float:
        """Hellerstein's rank: run predicates in increasing rank order."""
        cost = self.predicate_cost(expr)
        selectivity = self.predicate_selectivity(expr)
        return (selectivity - 1.0) / cost


def optimize(
    plan: LogicalPlan,
    oracle: Optional[CostOracle] = None,
    parallelism: int = 1,
    inlining: bool = False,
) -> LogicalPlan:
    """Apply all rewrites; returns the (mutated) plan.

    ``parallelism > 1`` enables the Exchange placement pass (rewrite 5);
    at 1 the plan is untouched by it, reproducing serial plans exactly.
    ``inlining`` enables the Froid rewrite (rewrite 0): UDF call sites
    with an :class:`~repro.analysis.decompile.InlineTemplate` are
    replaced by the lifted expression *before* the other rewrites, so
    pushdown, folding, and rank ordering all see through the call.
    """
    oracle = oracle or CostOracle()
    if inlining:
        _inline_udfs(plan, oracle)
    plan = _pushdown(plan)
    _fold_constants(plan, oracle)
    _order_predicates(plan, oracle)
    _select_indexes(plan)
    if parallelism > 1:
        plan = _place_exchanges(plan, oracle, parallelism)
    return plan


# ---------------------------------------------------------------------------
# Rewrite 0: Froid-style UDF inlining
# ---------------------------------------------------------------------------

#: SQL types acceptable per VM parameter kind.  An argument whose
#: inferred type falls outside the set keeps its opaque call site: the
#: call path would reject the marshalling at run time, and inlining must
#: not silently compute where the call would have errored.  NULL
#: (statically unknown) is always acceptable.
_PARAM_ACCEPTS = {
    "int": frozenset({SQLType.INT}),
    "float": frozenset({SQLType.INT, SQLType.FLOAT}),
    "bool": frozenset({SQLType.BOOL}),
    "str": frozenset({SQLType.STRING}),
    "arr": frozenset({SQLType.BYTES}),
    "farr": frozenset({SQLType.FLOATARR}),
}


def _inline_udfs(plan: LogicalPlan, oracle: CostOracle) -> None:
    """Replace inlinable UDF call sites with their lifted expressions.

    Runs before every other rewrite, on the freshly planned tree, so
    the downstream passes (pushdown, folding, Hellerstein ordering,
    Exchange placement) treat the lifted expression like native SQL —
    which is the whole point.
    """
    if isinstance(plan, LogicalScan):
        plan.predicates = [
            _inline_expr(p, oracle, plan.schema) for p in plan.predicates
        ]
    elif isinstance(plan, LogicalJoin):
        plan.predicates = [
            _inline_expr(p, oracle, plan.schema) for p in plan.predicates
        ]
    elif isinstance(plan, LogicalFilter):
        plan.predicates = [
            _inline_expr(p, oracle, plan.child.schema)
            for p in plan.predicates
        ]
    if isinstance(plan, LogicalProject):
        plan.exprs = [
            _inline_expr(e, oracle, plan.child.schema) for e in plan.exprs
        ]
    if isinstance(plan, LogicalSort):
        plan.keys = [
            _inline_expr(k, oracle, plan.child.schema) for k in plan.keys
        ]
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _inline_udfs(child, oracle)


def _inline_expr(expr: A.Expr, oracle: CostOracle, schema) -> A.Expr:
    """Bottom-up call-site replacement (nested inlinable calls work:
    the inner call becomes an :class:`~repro.sql.ast_nodes.Inlined`
    subtree, transparent to the outer call's argument checks)."""
    if isinstance(expr, A.FuncCall):
        args = tuple(_inline_expr(a, oracle, schema) for a in expr.args)
        if args != expr.args:
            expr = dataclasses.replace(expr, args=args)
        return _try_inline_call(expr, oracle, schema)
    if isinstance(expr, A.BinaryOp):
        return dataclasses.replace(
            expr,
            left=_inline_expr(expr.left, oracle, schema),
            right=_inline_expr(expr.right, oracle, schema),
        )
    if isinstance(expr, A.UnaryOp):
        return dataclasses.replace(
            expr, operand=_inline_expr(expr.operand, oracle, schema)
        )
    if isinstance(expr, A.IsNull):
        return dataclasses.replace(
            expr, operand=_inline_expr(expr.operand, oracle, schema)
        )
    if isinstance(expr, A.Between):
        return dataclasses.replace(
            expr,
            operand=_inline_expr(expr.operand, oracle, schema),
            low=_inline_expr(expr.low, oracle, schema),
            high=_inline_expr(expr.high, oracle, schema),
        )
    if isinstance(expr, A.InList):
        return dataclasses.replace(
            expr,
            operand=_inline_expr(expr.operand, oracle, schema),
            items=tuple(
                _inline_expr(item, oracle, schema) for item in expr.items
            ),
        )
    return expr


def _try_inline_call(
    call: A.FuncCall, oracle: CostOracle, schema
) -> A.Expr:
    if call.star or call.distinct:
        return call
    name = call.name.lower()
    template = oracle.inline_template(name)
    if template is None:
        return call
    if len(call.args) != len(template.param_kinds):
        return call
    if all(isinstance(arg, A.Literal) for arg in call.args):
        # All-literal call sites are better served by rewrite 2: one
        # plan-time VM invocation folds to a literal, which beats
        # evaluating even an inlined guard per row.
        return call
    substituted: List[A.Expr] = []
    guards: List[A.Expr] = []
    for arg, kind in zip(call.args, template.param_kinds):
        if _contains_udf_call(arg, oracle):
            # Substitution duplicates the argument expression once per
            # ParamRef occurrence plus the NULL guard; a UDF inside it
            # would multiply sandbox crossings.  Keep the site opaque.
            return call
        if isinstance(arg, A.Literal) and arg.value is None:
            # Strict NULL semantics: the whole call is NULL, always.
            return A.Inlined(name, A.Literal(None))
        inferred = infer_type(arg, schema, None)
        accepts = _PARAM_ACCEPTS.get(kind)
        if (accepts is not None and inferred is not SQLType.NULL
                and inferred not in accepts):
            return call  # ill-typed call: let the call path report it
        if kind == "float" and inferred is not SQLType.FLOAT:
            # The call path widens int arguments at marshalling; the
            # lifted float arithmetic needs the same widening.
            if isinstance(arg, A.Literal) and isinstance(arg.value, int):
                arg = A.Literal(float(arg.value))
            else:
                arg = A.FuncCall("float", (arg,))
        substituted.append(arg)
        if not isinstance(arg, A.Literal) and A.IsNull(arg) not in guards:
            # Dedup: f(x, x) needs one NULL test on x, not two.
            guards.append(A.IsNull(arg))
    body = _substitute_params(template.expr, substituted)
    if guards:
        # Strict NULL semantics at the (former) call boundary: any NULL
        # argument yields NULL without evaluating the body, exactly as
        # the call path shorts out before invoking the VM.  When the
        # flow certifier proved the UDF trap-free, the guard CASE is
        # marked so batch evaluation can run the body over the whole
        # batch and select, instead of partitioning rows per branch.
        definition = oracle.udf_definition(name)
        flows = getattr(definition, "flows", None)
        condition = guards[0]
        for guard in guards[1:]:
            condition = A.BinaryOp("or", condition, guard)
        body = A.Case(
            whens=((condition, A.Literal(None)),),
            default=body,
            trap_safe=bool(flows is not None and flows.trap_free),
        )
    return A.Inlined(name, body)


def _contains_udf_call(expr: A.Expr, oracle: CostOracle) -> bool:
    return any(
        oracle.udf_definition(call.name.lower()) is not None
        for call in _function_calls(expr)
    )


def _substitute_params(expr: A.Expr, args: List[A.Expr]) -> A.Expr:
    """Replace every :class:`ParamRef` leaf with its argument expression."""
    if isinstance(expr, A.ParamRef):
        return args[expr.index]
    if isinstance(expr, A.Literal):
        return expr
    if isinstance(expr, A.BinaryOp):
        return dataclasses.replace(
            expr,
            left=_substitute_params(expr.left, args),
            right=_substitute_params(expr.right, args),
        )
    if isinstance(expr, A.UnaryOp):
        return dataclasses.replace(
            expr, operand=_substitute_params(expr.operand, args)
        )
    if isinstance(expr, A.FuncCall):
        return dataclasses.replace(
            expr,
            args=tuple(_substitute_params(a, args) for a in expr.args),
        )
    if isinstance(expr, A.Case):
        return dataclasses.replace(
            expr,
            whens=tuple(
                (_substitute_params(c, args), _substitute_params(v, args))
                for c, v in expr.whens
            ),
            default=(
                _substitute_params(expr.default, args)
                if expr.default is not None else None
            ),
        )
    if isinstance(expr, A.IsNull):
        return dataclasses.replace(
            expr, operand=_substitute_params(expr.operand, args)
        )
    if isinstance(expr, A.Inlined):
        return dataclasses.replace(
            expr, body=_substitute_params(expr.body, args)
        )
    return expr


# ---------------------------------------------------------------------------
# Rewrite 1: predicate pushdown
# ---------------------------------------------------------------------------

def _pushdown(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, LogicalFilter):
        child = _pushdown(plan.child)
        remaining = [
            predicate for predicate in plan.predicates
            if not _try_push(child, predicate)
        ]
        if not remaining:
            return child
        plan.child = child
        plan.predicates = remaining
        return plan
    if isinstance(plan, LogicalJoin):
        plan.left = _pushdown(plan.left)
        plan.right = _pushdown(plan.right)
        remaining = [
            predicate for predicate in plan.predicates
            if not (
                _try_push(plan.left, predicate)
                or _try_push(plan.right, predicate)
            )
        ]
        plan.predicates = remaining
        return plan
    for attr in ("child",):
        child = getattr(plan, attr, None)
        if child is not None:
            setattr(plan, attr, _pushdown(child))
    return plan


def _try_push(plan: LogicalPlan, predicate: A.Expr) -> bool:
    """Push a conjunct to the deepest node that can evaluate it."""
    tables = _referenced_tables(predicate)
    if isinstance(plan, LogicalScan):
        if tables <= {plan.alias.lower()} or not tables:
            plan.predicates.append(predicate)
            return True
        return False
    if isinstance(plan, LogicalJoin):
        if _try_push(plan.left, predicate):
            return True
        if _try_push(plan.right, predicate):
            return True
        left_labels = _plan_labels(plan.left)
        right_labels = _plan_labels(plan.right)
        if tables <= (left_labels | right_labels):
            plan.predicates.append(predicate)
            return True
        return False
    if isinstance(plan, LogicalFilter):
        if _try_push(plan.child, predicate):
            return True
        plan.predicates.append(predicate)
        return True
    return False


def _referenced_tables(expr: A.Expr) -> Set[str]:
    """Aliases a predicate references; unqualified refs count as 'any'.

    An unqualified column could belong to any input, so predicates with
    unqualified references are treated as multi-table and stay put
    unless the plan has exactly one table (handled by the scan case
    accepting empty sets only for single-scan plans).
    """
    tables: Set[str] = set()
    unqualified = [False]

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.ColumnRef):
            if node.table:
                tables.add(node.table.lower())
            else:
                unqualified[0] = True
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.IsNull):
            walk(node.operand)
        elif isinstance(node, A.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, A.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, A.Case):
            for cond, value in node.whens:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, A.Inlined):
            walk(node.body)

    walk(expr)
    if unqualified[0]:
        tables.add("*unqualified*")
    return tables


def _plan_labels(plan: LogicalPlan) -> Set[str]:
    if isinstance(plan, LogicalScan):
        return {plan.alias.lower()}
    labels: Set[str] = set()
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            labels |= _plan_labels(child)
    return labels


# ---------------------------------------------------------------------------
# Rewrite 2: constant folding of pure UDFs
# ---------------------------------------------------------------------------

#: SQL-facing types whose values survive as plan-time literals.  LOB
#: handles and byte/float arrays are query-runtime objects and stay out.
_FOLDABLE_TYPES = frozenset({"int", "float", "bool", "str"})


def _fold_constants(plan: LogicalPlan, oracle: CostOracle) -> None:
    """Replace pure-UDF calls over literal args with their results."""
    if isinstance(plan, (LogicalScan, LogicalFilter, LogicalJoin)):
        plan.predicates = [
            _fold_expr(predicate, oracle) for predicate in plan.predicates
        ]
    if isinstance(plan, LogicalProject):
        plan.exprs = [_fold_expr(expr, oracle) for expr in plan.exprs]
    if isinstance(plan, LogicalSort):
        plan.keys = [_fold_expr(key, oracle) for key in plan.keys]
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _fold_constants(child, oracle)


def _fold_expr(expr: A.Expr, oracle: CostOracle) -> A.Expr:
    """Bottom-up rewrite; expression nodes are frozen, so changed
    subtrees are rebuilt with :func:`dataclasses.replace`."""
    if isinstance(expr, A.FuncCall):
        args = tuple(_fold_expr(arg, oracle) for arg in expr.args)
        if args != expr.args:
            expr = dataclasses.replace(expr, args=args)
        return _try_fold_call(expr, oracle)
    if isinstance(expr, A.BinaryOp):
        return dataclasses.replace(
            expr,
            left=_fold_expr(expr.left, oracle),
            right=_fold_expr(expr.right, oracle),
        )
    if isinstance(expr, A.UnaryOp):
        return dataclasses.replace(
            expr, operand=_fold_expr(expr.operand, oracle)
        )
    if isinstance(expr, A.IsNull):
        return dataclasses.replace(
            expr, operand=_fold_expr(expr.operand, oracle)
        )
    if isinstance(expr, A.Between):
        return dataclasses.replace(
            expr,
            operand=_fold_expr(expr.operand, oracle),
            low=_fold_expr(expr.low, oracle),
            high=_fold_expr(expr.high, oracle),
        )
    if isinstance(expr, A.InList):
        return dataclasses.replace(
            expr,
            operand=_fold_expr(expr.operand, oracle),
            items=tuple(_fold_expr(item, oracle) for item in expr.items),
        )
    if isinstance(expr, A.Case):
        return dataclasses.replace(
            expr,
            whens=tuple(
                (_fold_expr(cond, oracle), _fold_expr(value, oracle))
                for cond, value in expr.whens
            ),
            default=(
                _fold_expr(expr.default, oracle)
                if expr.default is not None else None
            ),
        )
    if isinstance(expr, A.Inlined):
        return dataclasses.replace(expr, body=_fold_expr(expr.body, oracle))
    return expr


def _try_fold_call(call: A.FuncCall, oracle: CostOracle) -> A.Expr:
    if call.star or call.distinct:
        return call
    definition = oracle.udf_definition(call.name.lower())
    if definition is None or not definition.is_pure:
        return call
    signature = definition.signature
    if signature.ret_type not in _FOLDABLE_TYPES:
        return call
    if any(t not in _FOLDABLE_TYPES for t in signature.param_types):
        return call
    if len(call.args) != len(signature.param_types):
        return call
    if not all(isinstance(arg, A.Literal) for arg in call.args):
        return call
    values = [arg.value for arg in call.args]
    if any(value is None for value in values):
        # Strict NULL semantics: no need to run the UDF at all.
        return A.Literal(None)
    try:
        result = oracle.fold_udf(call.name.lower(), values)
    except Exception:
        # Plan-time evaluation is an optimization, never an obligation:
        # a UDF that traps on these constants keeps its call site (and
        # will trap identically, attributably, at execution).
        return call
    return A.Literal(result)


# ---------------------------------------------------------------------------
# Rewrite 3: expensive-predicate ordering
# ---------------------------------------------------------------------------

def _order_predicates(plan: LogicalPlan, oracle: CostOracle) -> None:
    if isinstance(plan, (LogicalScan, LogicalFilter, LogicalJoin)):
        plan.predicates.sort(key=oracle.rank)
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _order_predicates(child, oracle)


# ---------------------------------------------------------------------------
# Rewrite 4: index selection
# ---------------------------------------------------------------------------

def _select_indexes(plan: LogicalPlan) -> None:
    if isinstance(plan, LogicalScan) and plan.table_info.indexes:
        _choose_index(plan)
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _select_indexes(child)


def _choose_index(scan: LogicalScan) -> None:
    indexed = {index.column.lower(): index for index in scan.table_info.indexes}
    for position, predicate in enumerate(scan.predicates):
        bounds = _index_bounds(predicate, indexed, scan.alias)
        if bounds is None:
            continue
        index_info, lo, hi = bounds
        scan.index = index_info
        scan.index_lo = lo
        scan.index_hi = hi
        # The index enforces this conjunct; drop it from the residual.
        del scan.predicates[position]
        return


def _index_bounds(
    predicate: A.Expr, indexed: dict, alias: str
) -> Optional[Tuple[object, Optional[int], Optional[int]]]:
    if isinstance(predicate, A.BinaryOp) and predicate.op in (
        "=", "<", "<=", ">", ">=",
    ):
        column, literal, op = _column_and_literal(predicate, alias)
        if column is None or column.lower() not in indexed:
            return None
        index_info = indexed[column.lower()]
        if op == "=":
            return index_info, literal, literal
        if op in ("<", "<="):
            hi = literal if op == "<=" else literal - 1
            return index_info, None, hi
        lo = literal if op == ">=" else literal + 1
        return index_info, lo, None
    if isinstance(predicate, A.Between) and not predicate.negated:
        if not isinstance(predicate.operand, A.ColumnRef):
            return None
        column = predicate.operand
        if column.table and column.table.lower() != alias.lower():
            return None
        if column.name.lower() not in indexed:
            return None
        low = predicate.low
        high = predicate.high
        if (
            isinstance(low, A.Literal) and isinstance(low.value, int)
            and isinstance(high, A.Literal) and isinstance(high.value, int)
        ):
            return indexed[column.name.lower()], low.value, high.value
    return None


def _column_and_literal(
    predicate: A.BinaryOp, alias: str
) -> Tuple[Optional[str], Optional[int], Optional[str]]:
    """Normalize ``col OP literal`` / ``literal OP col`` to (col, lit, op)."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(right, A.ColumnRef) and isinstance(left, A.Literal):
        left, right, op = right, left, flipped[op]
    elif not (isinstance(left, A.ColumnRef) and isinstance(right, A.Literal)):
        return None, None, None
    if left.table and left.table.lower() != alias.lower():
        return None, None, None
    if isinstance(right.value, bool) or not isinstance(right.value, int):
        return None, None, None
    return left.name, right.value, op


# ---------------------------------------------------------------------------
# Rewrite 5: Exchange placement (parallel UDF evaluation)
# ---------------------------------------------------------------------------

def _read_only_effects(definition) -> bool:
    """True when every statically inferred effect is a read-only callback.

    The Exchange gate used to demand full purity.  The flow pass widens
    it: a UDF whose only effects are read-only server callbacks
    (``cb_lob_read`` and friends — no observable state mutated, no
    ordering to preserve) races on nothing when its invocations
    interleave across threads.  Requires a flow certificate: the flow
    pass ran on the same bytecode the summary describes, so its presence
    certifies the effect set is the analyzer's, not a declaration.
    """
    from ..core.callbacks import READ_ONLY_CALLBACKS

    if getattr(definition, "flows", None) is None:
        return False
    summary = definition.analysis
    if summary is None or getattr(summary, "unknown_effects", True):
        return False
    return frozenset(summary.callbacks) <= READ_ONLY_CALLBACKS


def _parallel_profile(expr: A.Expr, oracle: CostOracle) -> Tuple[bool, bool]:
    """(safe, expensive) for evaluating ``expr`` across Exchange threads.

    *Safe* is gated on the static analyzer's certificates: a pure UDF
    has no shared state to race on, whether it runs in-process (each
    thread gets its own VM context) or in a worker pool; a flow-certified
    UDF whose only effects are *read-only* callbacks is equally
    interleaving-safe (see :func:`_read_only_effects`).  Native and
    effectful UDFs fall back to serial — their visible effect order must
    match tuple-at-a-time execution.  LOB-handle parameters are also
    serial-only: handle minting mutates per-query runtime state.

    *Expensive* decides whether the Exchange is worth its thread
    hand-offs: any isolated UDF qualifies (every call pays the process
    boundary), otherwise the registered per-call cost must clear
    :data:`_PARALLEL_COST_THRESHOLD`.
    """
    safe = True
    expensive = False
    for call in _function_calls(expr):
        definition = oracle.udf_definition(call.name.lower())
        if definition is None:
            continue  # built-in: cheap and thread-safe
        if "handle" in definition.signature.param_types:
            safe = False
            continue
        if not definition.is_pure and not _read_only_effects(definition):
            safe = False
            continue
        per_call = oracle.observed_cost(call.name.lower())
        if per_call is None:
            per_call = definition.cost_hints.cost_per_call
        if (
            definition.design.is_isolated
            or per_call >= _PARALLEL_COST_THRESHOLD
        ):
            expensive = True
    return safe, expensive


def _place_exchanges(
    plan: LogicalPlan, oracle: CostOracle, parallelism: int
) -> LogicalPlan:
    """Wrap expensive, parallel-safe Filter/Project work in Exchanges.

    Children first, so a pushed-down scan predicate and a residual
    filter each get their own region.  Joins and aggregates are left
    serial: their UDF predicates interleave with stateful build/probe
    structures, and the paper's workloads put UDF cost in scans and
    projections.
    """
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            setattr(plan, attr, _place_exchanges(child, oracle, parallelism))
    if isinstance(plan, LogicalScan):
        return _hoist_scan_suffix(plan, oracle, parallelism)
    if isinstance(plan, LogicalFilter):
        return _split_filter(plan, oracle, parallelism)
    if isinstance(plan, LogicalProject):
        profiles = [_parallel_profile(expr, oracle) for expr in plan.exprs]
        if profiles and all(safe for safe, __ in profiles) and any(
            expensive for __, expensive in profiles
        ):
            return LogicalExchange(plan, parallelism=parallelism)
    return plan


def _parallel_split(
    predicates: List[A.Expr], oracle: CostOracle
) -> Optional[int]:
    """Index where a rank-ordered conjunct list goes parallel, or None.

    The split keeps a serial prefix (cheap and/or unsafe predicates run
    where they always did) and hoists the longest all-safe suffix that
    starts at an expensive predicate.  Conjuncts still apply in rank
    order over each other's survivors, so row sets, row order, and UDF
    invocation patterns match serial evaluation.
    """
    split = len(predicates)
    while split > 0 and _parallel_profile(predicates[split - 1], oracle)[0]:
        split -= 1
    for index in range(split, len(predicates)):
        if _parallel_profile(predicates[index], oracle)[1]:
            return index
    return None


def _hoist_scan_suffix(
    scan: LogicalScan, oracle: CostOracle, parallelism: int
) -> LogicalPlan:
    """Hoist a scan's expensive pushed-down conjuncts into an Exchange.

    Pushdown (rewrite 1) moved UDF predicates into the scan; to evaluate
    them on a thread pool they come back out — as a Filter wrapped in an
    Exchange directly above the scan, which still sees them "at the
    early stages of the plan".  The cheap serial prefix stays in the
    scan, discarding most tuples before they cross a thread boundary.
    """
    start = _parallel_split(scan.predicates, oracle)
    if start is None:
        return scan
    hoisted = scan.predicates[start:]
    scan.predicates = scan.predicates[:start]
    return LogicalExchange(
        LogicalFilter(scan, predicates=hoisted), parallelism=parallelism
    )


def _split_filter(
    node: LogicalFilter, oracle: CostOracle, parallelism: int
) -> LogicalPlan:
    start = _parallel_split(node.predicates, oracle)
    if start is None:
        return node
    if start == 0:
        return LogicalExchange(node, parallelism=parallelism)
    hoisted = node.predicates[start:]
    node.predicates = node.predicates[:start]
    return LogicalExchange(
        LogicalFilter(node, predicates=hoisted), parallelism=parallelism
    )



def _function_calls(expr: A.Expr) -> List[A.FuncCall]:
    calls: List[A.FuncCall] = []

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.FuncCall):
            calls.append(node)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.IsNull):
            walk(node.operand)
        elif isinstance(node, A.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, A.Case):
            for cond, value in node.whens:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)
        elif isinstance(node, A.Inlined):
            # The Inlined name is deliberately NOT reported as a call:
            # the body is pure lifted SQL (built-ins only), so rank
            # ordering and Exchange placement cost it like native
            # expressions — the inlining dividend.
            walk(node.body)

    walk(expr)
    return calls
