"""Rule-based optimizer.

Four rewrites, each motivated by the paper's setting:

1. **Predicate pushdown** — single-table conjuncts move from filters and
   joins down to their scans, so UDF predicates apply "at the early
   stages of a query evaluation plan at the server" (Section 2.2's
   stated motivation for server-side UDFs).
2. **Constant folding of pure UDFs** — a UDF the load-time analyzer
   proved pure (no callbacks, the Froid insight applied to bytecode),
   applied to all-literal arguments, is evaluated once at plan time and
   replaced by its result; the per-tuple sandbox crossing disappears
   entirely.
3. **Expensive-predicate ordering** — within each conjunct list,
   predicates are ordered by Hellerstein's rank, (selectivity - 1) /
   cost-per-tuple [Hel95, Jhi88].  Cheap selective predicates run before
   expensive UDFs, which is exactly how the paper's benchmark queries
   use "restrictive (and inexpensive) predicates in the WHERE clause"
   to control how many tuples reach the UDF.
4. **Index selection** — an equality or range conjunct over an indexed
   integer column turns the scan into a B+-tree index scan.

Cost and selectivity for UDFs come from their registration's
:class:`~repro.core.udf.CostHints` — declared by the operator, or
derived from bytecode by the static analyzer when the registration
omitted them; built-in comparisons use standard textbook heuristics.
"""

from __future__ import annotations

import dataclasses

from typing import List, Optional, Set, Tuple

from . import ast_nodes as A
from .planner import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)

#: Default heuristics for built-in predicate shapes.
_EQ_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 0.3
_DEFAULT_SELECTIVITY = 0.5
_BUILTIN_COST = 1.0


class CostOracle:
    """Answers cost/selectivity questions about predicates.

    ``udf_hints(name)`` should return a
    :class:`~repro.core.udf.CostHints` or None; the executor wires this
    to the UDF registry.  ``udf_definition(name)`` exposes the full
    :class:`~repro.core.udf.UDFDefinition` (for purity facts) and
    ``fold_udf(name, args)`` evaluates a pure UDF at plan time — the
    base oracle knows no UDFs, so folding never triggers on it.
    """

    def udf_hints(self, name: str):
        return None

    def udf_definition(self, name: str):
        return None

    def fold_udf(self, name: str, args: List[object]) -> object:
        raise NotImplementedError(
            "this oracle cannot evaluate UDFs at plan time"
        )

    # -- predicate metrics ------------------------------------------------

    def predicate_cost(self, expr: A.Expr) -> float:
        cost = _BUILTIN_COST
        for call in _function_calls(expr):
            hints = self.udf_hints(call.name.lower())
            if hints is not None:
                cost += hints.cost_per_call
        return cost

    def predicate_selectivity(self, expr: A.Expr) -> float:
        for call in _function_calls(expr):
            hints = self.udf_hints(call.name.lower())
            if hints is not None:
                return hints.selectivity
        if isinstance(expr, A.BinaryOp):
            if expr.op == "=":
                return _EQ_SELECTIVITY
            if expr.op in ("<", "<=", ">", ">="):
                return _RANGE_SELECTIVITY
        if isinstance(expr, A.Between):
            return _RANGE_SELECTIVITY
        return _DEFAULT_SELECTIVITY

    def rank(self, expr: A.Expr) -> float:
        """Hellerstein's rank: run predicates in increasing rank order."""
        cost = self.predicate_cost(expr)
        selectivity = self.predicate_selectivity(expr)
        return (selectivity - 1.0) / cost


def optimize(plan: LogicalPlan, oracle: Optional[CostOracle] = None) -> LogicalPlan:
    """Apply all rewrites; returns the (mutated) plan."""
    oracle = oracle or CostOracle()
    plan = _pushdown(plan)
    _fold_constants(plan, oracle)
    _order_predicates(plan, oracle)
    _select_indexes(plan)
    return plan


# ---------------------------------------------------------------------------
# Rewrite 1: predicate pushdown
# ---------------------------------------------------------------------------

def _pushdown(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, LogicalFilter):
        child = _pushdown(plan.child)
        remaining = [
            predicate for predicate in plan.predicates
            if not _try_push(child, predicate)
        ]
        if not remaining:
            return child
        plan.child = child
        plan.predicates = remaining
        return plan
    if isinstance(plan, LogicalJoin):
        plan.left = _pushdown(plan.left)
        plan.right = _pushdown(plan.right)
        remaining = [
            predicate for predicate in plan.predicates
            if not (
                _try_push(plan.left, predicate)
                or _try_push(plan.right, predicate)
            )
        ]
        plan.predicates = remaining
        return plan
    for attr in ("child",):
        child = getattr(plan, attr, None)
        if child is not None:
            setattr(plan, attr, _pushdown(child))
    return plan


def _try_push(plan: LogicalPlan, predicate: A.Expr) -> bool:
    """Push a conjunct to the deepest node that can evaluate it."""
    tables = _referenced_tables(predicate)
    if isinstance(plan, LogicalScan):
        if tables <= {plan.alias.lower()} or not tables:
            plan.predicates.append(predicate)
            return True
        return False
    if isinstance(plan, LogicalJoin):
        if _try_push(plan.left, predicate):
            return True
        if _try_push(plan.right, predicate):
            return True
        left_labels = _plan_labels(plan.left)
        right_labels = _plan_labels(plan.right)
        if tables <= (left_labels | right_labels):
            plan.predicates.append(predicate)
            return True
        return False
    if isinstance(plan, LogicalFilter):
        if _try_push(plan.child, predicate):
            return True
        plan.predicates.append(predicate)
        return True
    return False


def _referenced_tables(expr: A.Expr) -> Set[str]:
    """Aliases a predicate references; unqualified refs count as 'any'.

    An unqualified column could belong to any input, so predicates with
    unqualified references are treated as multi-table and stay put
    unless the plan has exactly one table (handled by the scan case
    accepting empty sets only for single-scan plans).
    """
    tables: Set[str] = set()
    unqualified = [False]

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.ColumnRef):
            if node.table:
                tables.add(node.table.lower())
            else:
                unqualified[0] = True
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.IsNull):
            walk(node.operand)
        elif isinstance(node, A.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, A.FuncCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    if unqualified[0]:
        tables.add("*unqualified*")
    return tables


def _plan_labels(plan: LogicalPlan) -> Set[str]:
    if isinstance(plan, LogicalScan):
        return {plan.alias.lower()}
    labels: Set[str] = set()
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            labels |= _plan_labels(child)
    return labels


# ---------------------------------------------------------------------------
# Rewrite 2: constant folding of pure UDFs
# ---------------------------------------------------------------------------

#: SQL-facing types whose values survive as plan-time literals.  LOB
#: handles and byte/float arrays are query-runtime objects and stay out.
_FOLDABLE_TYPES = frozenset({"int", "float", "bool", "str"})


def _fold_constants(plan: LogicalPlan, oracle: CostOracle) -> None:
    """Replace pure-UDF calls over literal args with their results."""
    if isinstance(plan, (LogicalScan, LogicalFilter, LogicalJoin)):
        plan.predicates = [
            _fold_expr(predicate, oracle) for predicate in plan.predicates
        ]
    if isinstance(plan, LogicalProject):
        plan.exprs = [_fold_expr(expr, oracle) for expr in plan.exprs]
    if isinstance(plan, LogicalSort):
        plan.keys = [_fold_expr(key, oracle) for key in plan.keys]
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _fold_constants(child, oracle)


def _fold_expr(expr: A.Expr, oracle: CostOracle) -> A.Expr:
    """Bottom-up rewrite; expression nodes are frozen, so changed
    subtrees are rebuilt with :func:`dataclasses.replace`."""
    if isinstance(expr, A.FuncCall):
        args = tuple(_fold_expr(arg, oracle) for arg in expr.args)
        if args != expr.args:
            expr = dataclasses.replace(expr, args=args)
        return _try_fold_call(expr, oracle)
    if isinstance(expr, A.BinaryOp):
        return dataclasses.replace(
            expr,
            left=_fold_expr(expr.left, oracle),
            right=_fold_expr(expr.right, oracle),
        )
    if isinstance(expr, A.UnaryOp):
        return dataclasses.replace(
            expr, operand=_fold_expr(expr.operand, oracle)
        )
    if isinstance(expr, A.IsNull):
        return dataclasses.replace(
            expr, operand=_fold_expr(expr.operand, oracle)
        )
    if isinstance(expr, A.Between):
        return dataclasses.replace(
            expr,
            operand=_fold_expr(expr.operand, oracle),
            low=_fold_expr(expr.low, oracle),
            high=_fold_expr(expr.high, oracle),
        )
    if isinstance(expr, A.InList):
        return dataclasses.replace(
            expr,
            operand=_fold_expr(expr.operand, oracle),
            items=tuple(_fold_expr(item, oracle) for item in expr.items),
        )
    return expr


def _try_fold_call(call: A.FuncCall, oracle: CostOracle) -> A.Expr:
    if call.star or call.distinct:
        return call
    definition = oracle.udf_definition(call.name.lower())
    if definition is None or not definition.is_pure:
        return call
    signature = definition.signature
    if signature.ret_type not in _FOLDABLE_TYPES:
        return call
    if any(t not in _FOLDABLE_TYPES for t in signature.param_types):
        return call
    if len(call.args) != len(signature.param_types):
        return call
    if not all(isinstance(arg, A.Literal) for arg in call.args):
        return call
    values = [arg.value for arg in call.args]
    if any(value is None for value in values):
        # Strict NULL semantics: no need to run the UDF at all.
        return A.Literal(None)
    try:
        result = oracle.fold_udf(call.name.lower(), values)
    except Exception:
        # Plan-time evaluation is an optimization, never an obligation:
        # a UDF that traps on these constants keeps its call site (and
        # will trap identically, attributably, at execution).
        return call
    return A.Literal(result)


# ---------------------------------------------------------------------------
# Rewrite 3: expensive-predicate ordering
# ---------------------------------------------------------------------------

def _order_predicates(plan: LogicalPlan, oracle: CostOracle) -> None:
    if isinstance(plan, (LogicalScan, LogicalFilter, LogicalJoin)):
        plan.predicates.sort(key=oracle.rank)
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _order_predicates(child, oracle)


# ---------------------------------------------------------------------------
# Rewrite 4: index selection
# ---------------------------------------------------------------------------

def _select_indexes(plan: LogicalPlan) -> None:
    if isinstance(plan, LogicalScan) and plan.table_info.indexes:
        _choose_index(plan)
    for attr in ("child", "left", "right"):
        child = getattr(plan, attr, None)
        if child is not None:
            _select_indexes(child)


def _choose_index(scan: LogicalScan) -> None:
    indexed = {index.column.lower(): index for index in scan.table_info.indexes}
    for position, predicate in enumerate(scan.predicates):
        bounds = _index_bounds(predicate, indexed, scan.alias)
        if bounds is None:
            continue
        index_info, lo, hi = bounds
        scan.index = index_info
        scan.index_lo = lo
        scan.index_hi = hi
        # The index enforces this conjunct; drop it from the residual.
        del scan.predicates[position]
        return


def _index_bounds(
    predicate: A.Expr, indexed: dict, alias: str
) -> Optional[Tuple[object, Optional[int], Optional[int]]]:
    if isinstance(predicate, A.BinaryOp) and predicate.op in (
        "=", "<", "<=", ">", ">=",
    ):
        column, literal, op = _column_and_literal(predicate, alias)
        if column is None or column.lower() not in indexed:
            return None
        index_info = indexed[column.lower()]
        if op == "=":
            return index_info, literal, literal
        if op in ("<", "<="):
            hi = literal if op == "<=" else literal - 1
            return index_info, None, hi
        lo = literal if op == ">=" else literal + 1
        return index_info, lo, None
    if isinstance(predicate, A.Between) and not predicate.negated:
        if not isinstance(predicate.operand, A.ColumnRef):
            return None
        column = predicate.operand
        if column.table and column.table.lower() != alias.lower():
            return None
        if column.name.lower() not in indexed:
            return None
        low = predicate.low
        high = predicate.high
        if (
            isinstance(low, A.Literal) and isinstance(low.value, int)
            and isinstance(high, A.Literal) and isinstance(high.value, int)
        ):
            return indexed[column.name.lower()], low.value, high.value
    return None


def _column_and_literal(
    predicate: A.BinaryOp, alias: str
) -> Tuple[Optional[str], Optional[int], Optional[str]]:
    """Normalize ``col OP literal`` / ``literal OP col`` to (col, lit, op)."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(right, A.ColumnRef) and isinstance(left, A.Literal):
        left, right, op = right, left, flipped[op]
    elif not (isinstance(left, A.ColumnRef) and isinstance(right, A.Literal)):
        return None, None, None
    if left.table and left.table.lower() != alias.lower():
        return None, None, None
    if isinstance(right.value, bool) or not isinstance(right.value, int):
        return None, None, None
    return left.name, right.value, op


def _function_calls(expr: A.Expr) -> List[A.FuncCall]:
    calls: List[A.FuncCall] = []

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.FuncCall):
            calls.append(node)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.IsNull):
            walk(node.operand)
        elif isinstance(node, A.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)

    walk(expr)
    return calls
