"""EXPLAIN: render optimized plans as text.

The interesting part for this paper is *predicate placement*: EXPLAIN
shows the per-scan conjunct lists in their optimized (rank) order, so a
user can see that the cheap ``type = 'tech'`` predicate runs before the
expensive ``InvestVal(history)`` UDF — the [Hel95]/[Jhi88] behaviour the
related-work section describes.

When a :class:`~repro.sql.optimizer.CostOracle` is supplied, each
predicate line that calls a UDF is annotated with the facts the ordering
decision used: the UDF's purity (from the load-time analyzer) and its
cost/selectivity, tagged ``derived`` when the analyzer estimated them
from bytecode rather than the registration declaring them.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .planner import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalExchange,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)


def render_expr(expr: A.Expr) -> str:
    """An expression back to (approximately) its SQL text."""
    if isinstance(expr, A.Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return repr(value)
    if isinstance(expr, A.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, A.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, A.BinaryOp):
        op = expr.op.upper() if expr.op in ("and", "or", "like") else expr.op
        return f"({render_expr(expr.left)} {op} {render_expr(expr.right)})"
    if isinstance(expr, A.UnaryOp):
        if expr.op == "not":
            return f"(NOT {render_expr(expr.operand)})"
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, A.IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand)} {suffix})"
    if isinstance(expr, A.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({render_expr(expr.operand)} {word} "
            f"{render_expr(expr.low)} AND {render_expr(expr.high)})"
        )
    if isinstance(expr, A.InList):
        word = "NOT IN" if expr.negated else "IN"
        items = ", ".join(render_expr(item) for item in expr.items)
        return f"({render_expr(expr.operand)} {word} ({items}))"
    if isinstance(expr, A.FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(render_expr(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, A.Case):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expr(expr.default)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, A.ParamRef):
        # Only visible when pretty-printing an InlineTemplate body
        # (``repro.analysis inline``); planned expressions have every
        # parameter substituted.
        return f"${expr.index + 1}"
    if isinstance(expr, A.Inlined):
        return render_expr(expr.body)
    return repr(expr)


def explain_plan(
    plan: LogicalPlan,
    oracle: Optional[object] = None,
    batch_size: Optional[int] = None,
    analysis: Optional[object] = None,
) -> List[str]:
    """One indented line per plan node, root first.

    ``oracle`` (a :class:`~repro.sql.optimizer.CostOracle`) enables the
    per-predicate UDF purity/cost annotations.  ``batch_size`` (the
    executor setting the plan would run with) annotates every operator
    with its effective batch size so plans are auditable.  ``analysis``
    (a :class:`~repro.obs.profile.QueryProfile` from an ``EXPLAIN
    ANALYZE`` run) appends the actual rows/batches/time each operator
    produced.
    """
    lines: List[str] = []
    _render(plan, 0, lines, oracle, batch_size, analysis)
    return lines


def udf_profile_lines(profile: Optional[object]) -> List[str]:
    """One ``EXPLAIN ANALYZE`` line per (UDF, design) the query ran."""
    lines: List[str] = []
    if profile is None:
        return lines
    for (name, design), udf in sorted(profile.udfs.items()):
        calls = udf.calls.value
        mean_us = udf.total_ns.value / calls / 1000.0 if calls else 0.0
        p95 = udf.invoke_ns.quantile(0.95)
        p95_us = (p95 or 0.0) / 1000.0
        line = (
            f"udf {name} [{design}]: calls={calls} "
            f"batches={udf.batches.value} "
            f"mean={mean_us:.1f}us/call p95={p95_us:.1f}us"
        )
        if udf.fuel_used.value or udf.heap_used.value:
            line += (
                f" fuel={udf.fuel_used.value} heap={udf.heap_used.value}"
            )
        if udf.queue_wait_ns.count:
            wait_us = (udf.queue_wait_ns.quantile(0.5) or 0.0) / 1000.0
            trip_us = (udf.round_trip_ns.quantile(0.5) or 0.0) / 1000.0
            line += (
                f" queue_wait_p50={wait_us:.1f}us "
                f"round_trip_p50={trip_us:.1f}us"
            )
        if udf.crashes.value or udf.refusals.value:
            line += (
                f" crashes={udf.crashes.value} "
                f"refusals={udf.refusals.value}"
            )
        # Tiered execution: which tier this UDF's call sites ran on and
        # its lifetime promotion/deopt tally.  Only rendered once
        # tiering has touched the UDF (a bound tier state or tier-0
        # stamps), so seed ANALYZE output is byte-identical otherwise.
        if (udf.tier_state is not None
                or udf.tier0_invoke_ns.count
                or udf.tier1_invoke_ns.count):
            tier = udf.tier_summary()
            line += (
                f" [tier={tier['tier']}, "
                f"promotions={tier['promotions']}, "
                f"deopts={tier['deopts']}]"
            )
        lines.append(line)
    for name, counter in sorted(
        getattr(profile, "inlined_udfs", {}).items()
    ):
        # Former call sites the optimizer replaced with lifted SQL: the
        # rows are counted, but there were no VM entries to time.
        lines.append(f"udf {name} [inlined]: rows={counter.value}")
    return lines


def _actual(plan: LogicalPlan, analysis: Optional[object]) -> str:
    """`` (actual rows=N batches=M time=T ms)`` from an ANALYZE run."""
    if analysis is None:
        return ""
    stats = analysis.operator_stats(plan)
    if stats is None:
        return ""
    return (
        f" (actual rows={stats.rows} batches={stats.batches} "
        f"time={stats.time_ns / 1e6:.3f} ms)"
    )


def _inlined_names(expr: A.Expr) -> List[str]:
    """Names of UDFs the optimizer inlined within ``expr``, in order."""
    names: List[str] = []

    def walk(node: A.Expr) -> None:
        if isinstance(node, A.Inlined):
            names.append(node.name)
            walk(node.body)
            return
        if isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, A.UnaryOp):
            walk(node.operand)
        elif isinstance(node, A.IsNull):
            walk(node.operand)
        elif isinstance(node, A.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, A.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, A.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, A.Case):
            for cond, value in node.whens:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return names


def _inline_notes(exprs: List[A.Expr], oracle: Optional[object]) -> str:
    """Inlining-only annotations for non-predicate expression lists.

    Projection and sort-key lines never carried the cost/selectivity
    notes (those drive predicate ordering, which does not apply), but
    with inlining on their call sites still need marking.  Every source
    here answers None/empty with inlining off, keeping seed EXPLAIN
    output byte-identical.
    """
    if oracle is None:
        return ""
    from .optimizer import _function_calls

    notes: List[str] = []
    for expr in exprs:
        for name in _inlined_names(expr):
            notes.append(f"udf {name}: inlined")
        for call in _function_calls(expr):
            name = call.name.lower()
            if getattr(oracle, "udf_definition", lambda n: None)(name) is None:
                continue
            refusal = getattr(oracle, "inline_refusal", lambda n: None)(name)
            if refusal is not None:
                notes.append(f"udf {name}: opaque({refusal})")
            elif getattr(
                oracle, "inline_template", lambda n: None
            )(name) is not None:
                notes.append(f"udf {name}: opaque(call-site)")
    if not notes:
        return ""
    return "  -- " + "; ".join(notes)


def _annotate(expr: A.Expr, oracle: Optional[object]) -> str:
    """`` -- udf f: pure, cost≈N (derived), sel=S`` for UDF predicates.

    When the oracle carries trusted adaptive feedback, the measured
    numbers replace the static ones and are marked ``(observed)``.
    """
    if oracle is None:
        return ""
    from .optimizer import _function_calls

    notes = []
    for name in _inlined_names(expr):
        # The call site is gone: the body runs as native SQL, no VM
        # entry, no metering, no marshalling.
        notes.append(f"udf {name}: inlined")
    for call in _function_calls(expr):
        name = call.name.lower()
        definition = getattr(oracle, "udf_definition", lambda n: None)(name)
        if definition is None:
            continue
        hints = definition.cost_hints
        purity = "pure" if definition.is_pure else "impure"
        observed = getattr(oracle, "observed_cost", lambda n: None)(name)
        if observed is not None:
            cost_note = f"cost≈{observed:.0f} (observed)"
        else:
            origin = "derived" if hints.derived else "declared"
            cost_note = f"cost≈{hints.cost_per_call:.0f} ({origin})"
        note = (
            f"udf {definition.name}: {purity}, "
            f"{cost_note}, "
            f"sel={hints.selectivity:.2f}"
        )
        # With inlining on, every surviving call site says why it is
        # still a call: the decompiler's refusal reason, or
        # ``call-site`` when the body lifted but this particular use
        # disqualified (literal args, type mismatch, nested UDF args).
        refusal = getattr(oracle, "inline_refusal", lambda n: None)(name)
        if refusal is not None:
            note += f", opaque({refusal})"
        elif getattr(oracle, "inline_template", lambda n: None)(name) is not None:
            note += ", opaque(call-site)"
        cert = getattr(definition, "certificate", None)
        if cert is not None and (
            cert.fuel_bound is not None or cert.mem_bound is not None
        ):
            from ..analysis.intervals import describe_bound

            note += (
                f", bounded(fuel≤{describe_bound(cert.fuel_bound)}, "
                f"mem≤{describe_bound(cert.mem_bound)})"
            )
        flows = getattr(definition, "flows", None)
        if flows is not None and flows.trap_free:
            # The interval pass proved no instruction can fault, so the
            # executors skip per-row trap partitioning for this UDF.
            note += ", trap-free"
        notes.append(note)
    sel_observed = getattr(oracle, "observed_selectivity", lambda k: None)(
        render_expr(expr)
    )
    if sel_observed is not None:
        notes.append(f"sel≈{sel_observed:.2f} (observed)")
    if not notes:
        return ""
    return "  -- " + "; ".join(notes)


def _render(
    plan: LogicalPlan,
    depth: int,
    lines: List[str],
    oracle: Optional[object] = None,
    batch_size: Optional[int] = None,
    analysis: Optional[object] = None,
) -> None:
    pad = "  " * depth
    # The effective batch size the executor would run this operator at,
    # appended to every operator head line so plans are auditable; an
    # ANALYZE run appends what the operator actually produced.
    tag = f" [batch={batch_size}]" if batch_size is not None else ""
    tag += _actual(plan, analysis)
    if isinstance(plan, LogicalScan):
        if plan.index is not None:
            bounds = f"[{plan.index_lo}..{plan.index_hi}]"
            head = (f"IndexScan {plan.table_name} AS {plan.alias} "
                    f"USING {plan.index.name} {bounds}")
        else:
            head = f"SeqScan {plan.table_name} AS {plan.alias}"
        lines.append(pad + head + tag)
        for position, predicate in enumerate(plan.predicates):
            lines.append(
                f"{pad}  filter[{position}]: {render_expr(predicate)}"
                f"{_annotate(predicate, oracle)}"
            )
        return
    if isinstance(plan, LogicalJoin):
        lines.append(pad + "NestedLoopJoin" + tag)
        for position, predicate in enumerate(plan.predicates):
            lines.append(
                f"{pad}  on[{position}]: {render_expr(predicate)}"
                f"{_annotate(predicate, oracle)}"
            )
        _render(plan.left, depth + 1, lines, oracle, batch_size, analysis)
        _render(plan.right, depth + 1, lines, oracle, batch_size, analysis)
        return
    if isinstance(plan, LogicalExchange):
        # The parallel region marker: everything below it runs across
        # the thread pool, order preserved.
        lines.append(pad + f"Exchange [parallel={plan.parallelism}]" + tag)
    elif isinstance(plan, LogicalFilter):
        lines.append(pad + "Filter" + tag)
        for position, predicate in enumerate(plan.predicates):
            lines.append(
                f"{pad}  filter[{position}]: {render_expr(predicate)}"
                f"{_annotate(predicate, oracle)}"
            )
    elif isinstance(plan, LogicalProject):
        rendered = ", ".join(
            f"{render_expr(expr)} AS {name}"
            for expr, name in zip(plan.exprs, plan.names)
        )
        lines.append(
            pad + f"Project [{rendered}]" + tag
            + _inline_notes(plan.exprs, oracle)
        )
    elif isinstance(plan, LogicalAggregate):
        groups = ", ".join(render_expr(e) for e in plan.group_exprs)
        aggs = ", ".join(
            f"{spec.func}({render_expr(spec.arg) if spec.arg else '*'})"
            for spec in plan.aggregates
        )
        lines.append(pad + f"Aggregate groups=[{groups}] aggs=[{aggs}]" + tag)
    elif isinstance(plan, LogicalDistinct):
        lines.append(pad + "Distinct" + tag)
    elif isinstance(plan, LogicalSort):
        keys = ", ".join(
            f"{render_expr(key)} {'DESC' if desc else 'ASC'}"
            for key, desc in zip(plan.keys, plan.descending)
        )
        lines.append(pad + f"Sort [{keys}]" + tag + _inline_notes(plan.keys, oracle))
    elif isinstance(plan, LogicalLimit):
        lines.append(pad + f"Limit {plan.limit}" + tag)
    else:
        lines.append(pad + type(plan).__name__)
    child = getattr(plan, "child", None)
    if child is not None:
        _render(child, depth + 1, lines, oracle, batch_size, analysis)
