"""Logical planning: SELECT ASTs -> logical operator trees.

The logical plan is deliberately simple — scans, filters (kept as
*conjunct lists* so the optimizer can reorder them), cross joins,
projection, aggregation, distinct, sort, limit.  The paper's
optimization concern (where to place expensive UDF predicates relative
to cheap ones, after [Hel95]/[Jhi88]) lives entirely in the conjunct
lists, which :mod:`repro.sql.optimizer` reorders by predicate rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import PlanError
from . import ast_nodes as A
from .expressions import AGGREGATE_NAMES, FunctionResolver, infer_type
from .types import RowSchema, SchemaColumn, SQLType, schema_for_table


# ---------------------------------------------------------------------------
# Logical operators
# ---------------------------------------------------------------------------

class LogicalPlan:
    """Base logical node; every node knows its output schema."""

    schema: RowSchema


@dataclass
class LogicalScan(LogicalPlan):
    table_name: str
    alias: str
    table_info: object  # storage TableInfo
    predicates: List[A.Expr] = field(default_factory=list)
    #: Filled by the optimizer when an index serves an equality/range.
    index: Optional[object] = None
    index_lo: Optional[int] = None
    index_hi: Optional[int] = None

    def __post_init__(self) -> None:
        self.schema = schema_for_table(self.table_info, self.alias)


@dataclass
class LogicalJoin(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    predicates: List[A.Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.schema = self.left.schema.concat(self.right.schema)


@dataclass
class LogicalFilter(LogicalPlan):
    child: LogicalPlan
    predicates: List[A.Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class LogicalProject(LogicalPlan):
    child: LogicalPlan
    exprs: List[A.Expr] = field(default_factory=list)
    names: List[str] = field(default_factory=list)
    types: List[SQLType] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.schema = RowSchema(
            [
                SchemaColumn(table=None, name=name, sql_type=sql_type)
                for name, sql_type in zip(self.names, self.types)
            ]
        )


@dataclass
class AggregateSpec:
    """One aggregate in the SELECT list."""

    func: str                 # count | sum | avg | min | max
    arg: Optional[A.Expr]     # None for COUNT(*)
    distinct: bool
    name: str


@dataclass
class LogicalAggregate(LogicalPlan):
    child: LogicalPlan
    group_exprs: List[A.Expr] = field(default_factory=list)
    group_names: List[str] = field(default_factory=list)
    group_types: List[SQLType] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        columns = [
            SchemaColumn(table=None, name=name, sql_type=sql_type)
            for name, sql_type in zip(self.group_names, self.group_types)
        ]
        for spec in self.aggregates:
            sql_type = SQLType.INT if spec.func == "count" else SQLType.FLOAT
            columns.append(
                SchemaColumn(table=None, name=spec.name, sql_type=sql_type)
            )
        self.schema = RowSchema(columns)


@dataclass
class LogicalExchange(LogicalPlan):
    """Parallel evaluation region (inserted by the optimizer).

    The child's expensive, parallel-safe work — a Filter's hoisted UDF
    conjuncts or a Project's UDF expressions — runs across a thread
    pool of ``parallelism`` workers, with results collected in dispatch
    order so row order matches serial execution exactly.
    """

    child: LogicalPlan
    parallelism: int = 1

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    keys: List[A.Expr] = field(default_factory=list)
    descending: List[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.schema = self.child.schema


@dataclass
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int = 0

    def __post_init__(self) -> None:
        self.schema = self.child.schema


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def plan_select(
    select: A.Select,
    catalog,
    resolver: Optional[FunctionResolver] = None,
) -> LogicalPlan:
    """Build the (unoptimized) logical plan for a SELECT."""
    if not select.tables:
        raise PlanError("SELECT requires a FROM clause")
    seen_labels = set()
    plan: Optional[LogicalPlan] = None
    for table_ref in select.tables:
        label = table_ref.label.lower()
        if label in seen_labels:
            raise PlanError(f"duplicate table alias {table_ref.label!r}")
        seen_labels.add(label)
        scan = LogicalScan(
            table_name=table_ref.name,
            alias=table_ref.label,
            table_info=catalog.get_table(table_ref.name),
        )
        plan = scan if plan is None else LogicalJoin(plan, scan)

    from_schema = plan.schema
    if select.where is not None:
        where = qualify(select.where, from_schema)
        plan = LogicalFilter(plan, predicates=split_conjuncts(where))

    items = [
        item
        if isinstance(item.expr, A.Star)
        else A.SelectItem(qualify(item.expr, from_schema), item.alias)
        for item in select.items
    ]
    if select.group_by:
        select = A.Select(
            items=select.items,
            tables=select.tables,
            where=select.where,
            group_by=tuple(
                qualify(expr, from_schema) for expr in select.group_by
            ),
            order_by=select.order_by,
            limit=select.limit,
            distinct=select.distinct,
        )
    items = _expand_stars(tuple(items), plan.schema)
    aggregates = _collect_aggregates(items)
    is_aggregate = bool(aggregates or select.group_by)

    # ORDER BY may reference either pre-projection columns (sort runs
    # below the projection) or output aliases (sort runs above); the
    # pre-projection placement is impossible once rows are aggregated.
    sort_below = False
    sort_keys: List[A.Expr] = []
    if select.order_by and not is_aggregate and not select.distinct:
        try:
            sort_keys = [
                qualify(item.expr, plan.schema) for item in select.order_by
            ]
            sort_below = True
        except PlanError:
            sort_below = False
    if sort_below:
        plan = LogicalSort(
            plan,
            keys=sort_keys,
            descending=[item.descending for item in select.order_by],
        )

    if is_aggregate:
        plan = _plan_aggregate(select, items, plan, resolver)
    else:
        exprs = [item.expr for item in items]
        names = [_output_name(item, index)
                 for index, item in enumerate(items)]
        types = [infer_type(e, plan.schema, resolver) for e in exprs]
        plan = LogicalProject(plan, exprs=exprs, names=names, types=types)

    if select.distinct:
        plan = LogicalDistinct(plan)
    if select.order_by and not sort_below:
        plan = LogicalSort(
            plan,
            keys=[item.expr for item in select.order_by],
            descending=[item.descending for item in select.order_by],
        )
    if select.limit is not None:
        plan = LogicalLimit(plan, limit=select.limit)
    return plan


def qualify(expr: A.Expr, schema: RowSchema) -> A.Expr:
    """Rewrite unqualified column references with their table label.

    Resolution against the FROM schema happens once, here, so the
    optimizer can reason about which tables a predicate touches (and
    ambiguous references fail at plan time with a clear error).
    """
    if isinstance(expr, A.ColumnRef):
        index = schema.resolve(expr.name, expr.table)
        column = schema.columns[index]
        return A.ColumnRef(column.name, table=column.table)
    if isinstance(expr, A.BinaryOp):
        return A.BinaryOp(
            expr.op, qualify(expr.left, schema), qualify(expr.right, schema)
        )
    if isinstance(expr, A.UnaryOp):
        return A.UnaryOp(expr.op, qualify(expr.operand, schema))
    if isinstance(expr, A.IsNull):
        return A.IsNull(qualify(expr.operand, schema), expr.negated)
    if isinstance(expr, A.Between):
        return A.Between(
            qualify(expr.operand, schema),
            qualify(expr.low, schema),
            qualify(expr.high, schema),
            expr.negated,
        )
    if isinstance(expr, A.InList):
        return A.InList(
            qualify(expr.operand, schema),
            tuple(qualify(item, schema) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, A.FuncCall):
        return A.FuncCall(
            expr.name,
            tuple(qualify(arg, schema) for arg in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
    return expr


def split_conjuncts(expr: A.Expr) -> List[A.Expr]:
    """Flatten a predicate tree into its top-level AND conjuncts."""
    if isinstance(expr, A.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _expand_stars(
    items: Tuple[A.SelectItem, ...], schema: RowSchema
) -> List[A.SelectItem]:
    expanded: List[A.SelectItem] = []
    for item in items:
        if isinstance(item.expr, A.Star):
            table = item.expr.table
            matched = False
            for column in schema.columns:
                if table is None or (
                    (column.table or "").lower() == table.lower()
                ):
                    matched = True
                    expanded.append(
                        A.SelectItem(
                            A.ColumnRef(column.name, table=column.table)
                        )
                    )
            if not matched:
                raise PlanError(f"no columns match {table}.*")
        else:
            expanded.append(item)
    return expanded


def _output_name(item: A.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, A.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, A.FuncCall):
        return item.expr.name.lower()
    return f"col{index}"


def _collect_aggregates(items: List[A.SelectItem]) -> List[A.FuncCall]:
    found: List[A.FuncCall] = []
    for item in items:
        found.extend(_find_aggregates(item.expr))
    return found


def _find_aggregates(expr: A.Expr) -> List[A.FuncCall]:
    if isinstance(expr, A.FuncCall):
        if expr.name.lower() in AGGREGATE_NAMES:
            for arg in expr.args:
                if _find_aggregates(arg):
                    raise PlanError("nested aggregates are not allowed")
            return [expr]
        nested: List[A.FuncCall] = []
        for arg in expr.args:
            nested.extend(_find_aggregates(arg))
        return nested
    if isinstance(expr, A.BinaryOp):
        return _find_aggregates(expr.left) + _find_aggregates(expr.right)
    if isinstance(expr, A.UnaryOp):
        return _find_aggregates(expr.operand)
    if isinstance(expr, (A.IsNull,)):
        return _find_aggregates(expr.operand)
    if isinstance(expr, A.Between):
        return (
            _find_aggregates(expr.operand)
            + _find_aggregates(expr.low)
            + _find_aggregates(expr.high)
        )
    if isinstance(expr, A.InList):
        found = _find_aggregates(expr.operand)
        for item in expr.items:
            found.extend(_find_aggregates(item))
        return found
    return []


def _plan_aggregate(
    select: A.Select,
    items: List[A.SelectItem],
    child: LogicalPlan,
    resolver,
) -> LogicalPlan:
    """GROUP BY / aggregate planning.

    Restriction (documented): with aggregation, every SELECT item must be
    either a group expression or a single aggregate call — arithmetic
    over aggregates (``SUM(x)/COUNT(x)``) is not supported; use AVG.
    """
    group_exprs = list(select.group_by)
    group_names: List[str] = []
    group_types: List[SQLType] = []
    for index, expr in enumerate(group_exprs):
        if isinstance(expr, A.ColumnRef):
            group_names.append(expr.name)
        else:
            group_names.append(f"group{index}")
        group_types.append(infer_type(expr, child.schema, resolver))

    aggregates: List[AggregateSpec] = []
    out_exprs: List[A.Expr] = []
    out_names: List[str] = []
    out_types: List[SQLType] = []
    for index, item in enumerate(items):
        name = _output_name(item, index)
        expr = item.expr
        if isinstance(expr, A.FuncCall) and expr.name.lower() in AGGREGATE_NAMES:
            # Internal names are positional so duplicate aggregates
            # (e.g. two COUNTs) never collide at resolution time.
            spec_name = f"__agg{index}"
            aggregates.append(
                AggregateSpec(
                    func=expr.name.lower(),
                    arg=None if expr.star else (expr.args[0] if expr.args else None),
                    distinct=expr.distinct,
                    name=spec_name,
                )
            )
            out_exprs.append(A.ColumnRef(spec_name))
            out_names.append(name)
            out_types.append(
                SQLType.INT if expr.name.lower() == "count" else SQLType.FLOAT
            )
            continue
        position = _group_position(expr, group_exprs)
        if position is None:
            raise PlanError(
                f"SELECT item {name!r} is neither an aggregate nor in "
                f"GROUP BY"
            )
        out_exprs.append(A.ColumnRef(group_names[position]))
        out_names.append(name)
        out_types.append(group_types[position])

    aggregate = LogicalAggregate(
        child,
        group_exprs=group_exprs,
        group_names=group_names,
        group_types=group_types,
        aggregates=aggregates,
    )
    return LogicalProject(
        aggregate, exprs=out_exprs, names=out_names, types=out_types
    )


def _group_position(expr: A.Expr, group_exprs: List[A.Expr]) -> Optional[int]:
    for index, group_expr in enumerate(group_exprs):
        if expr == group_expr:
            return index
    return None
