"""SQL query processing: lexer, parser, planner, optimizer, executor."""

from .types import SQLType, ColumnDef
from .lexer import tokenize
from .parser import parse_statement, parse_script

__all__ = [
    "ColumnDef",
    "SQLType",
    "parse_script",
    "parse_statement",
    "tokenize",
]
