"""SQL-level types and schemas.

The SQL layer's types are a thin veneer over the storage layer's
:class:`~repro.storage.record.ColumnType`, with the extra ADT flavour the
paper's OR-DBMS setting needs: BYTEARRAY (images, generic blobs) and
FLOATARRAY (time series like ``Stocks.history``) are first-class column
types whose values can be passed to UDFs, sliced via callbacks, and
spilled to LOB storage when large.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import PlanError
from ..storage.record import ColumnType


class SQLType(enum.Enum):
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    BYTES = "bytes"
    FLOATARR = "floatarr"
    NULL = "null"  # the type of a bare NULL literal

    @property
    def storage_type(self) -> ColumnType:
        try:
            return _STORAGE[self]
        except KeyError:
            raise PlanError(f"type {self.value} is not storable") from None


_STORAGE = {
    SQLType.INT: ColumnType.INT,
    SQLType.FLOAT: ColumnType.FLOAT,
    SQLType.BOOL: ColumnType.BOOL,
    SQLType.STRING: ColumnType.STRING,
    SQLType.BYTES: ColumnType.BYTES,
    SQLType.FLOATARR: ColumnType.FLOATARR,
}

_FROM_STORAGE = {v: k for k, v in _STORAGE.items()}

#: Type names accepted by the SQL parser (case-insensitive).
TYPE_NAMES = {
    "int": SQLType.INT,
    "integer": SQLType.INT,
    "bigint": SQLType.INT,
    "float": SQLType.FLOAT,
    "double": SQLType.FLOAT,
    "real": SQLType.FLOAT,
    "bool": SQLType.BOOL,
    "boolean": SQLType.BOOL,
    "string": SQLType.STRING,
    "varchar": SQLType.STRING,
    "text": SQLType.STRING,
    "bytearray": SQLType.BYTES,
    "bytea": SQLType.BYTES,
    "blob": SQLType.BYTES,
    "floatarray": SQLType.FLOATARR,
    "timeseries": SQLType.FLOATARR,
}


def sql_type_from_name(name: str) -> SQLType:
    try:
        return TYPE_NAMES[name.lower()]
    except KeyError:
        raise PlanError(f"unknown SQL type {name!r}") from None


def sql_type_from_storage(col_type: ColumnType) -> SQLType:
    return _FROM_STORAGE[col_type]


@dataclass(frozen=True)
class ColumnDef:
    """One column in CREATE TABLE."""

    name: str
    sql_type: SQLType
    nullable: bool = True


@dataclass(frozen=True)
class SchemaColumn:
    """One output column of an operator: qualified name + type."""

    table: Optional[str]  # alias (or table name); None for computed columns
    name: str
    sql_type: SQLType


class RowSchema:
    """Orders and resolves the columns a row carries at some plan node."""

    def __init__(self, columns: List[SchemaColumn]):
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        """Index of a column reference; ambiguity and misses raise."""
        matches = [
            index
            for index, column in enumerate(self.columns)
            if column.name.lower() == name.lower()
            and (
                table is None
                or (column.table or "").lower() == table.lower()
            )
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise PlanError(f"unknown column {qualified!r}")
        if len(matches) > 1:
            raise PlanError(f"ambiguous column reference {name!r}")
        return matches[0]

    def concat(self, other: "RowSchema") -> "RowSchema":
        return RowSchema(self.columns + other.columns)

    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    def types(self) -> List[SQLType]:
        return [column.sql_type for column in self.columns]


def schema_for_table(table_info, alias: Optional[str] = None) -> RowSchema:
    """Schema of a base-table scan (storage catalog -> SQL view)."""
    label = alias or table_info.name
    return RowSchema(
        [
            SchemaColumn(
                table=label,
                name=column.name,
                sql_type=sql_type_from_storage(column.col_type),
            )
            for column in table_info.columns
        ]
    )
