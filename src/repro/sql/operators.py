"""Physical (Volcano-style) operators, batch-at-a-time.

Each operator exposes ``batches()``, a generator of *batches* (lists of
value-list rows), plus ``rows()``, the flattened per-row view.  PREDATOR
"is not a parallel OR-DBMS ... all expressions (including UDFs) are
evaluated in a serial manner" — and so are these: batching changes how
rows are *grouped* between operators (so fixed per-invocation UDF costs
amortize, see ``repro.core.factory.UDFExecutor.invoke_batch``), never
the order rows flow in or the rows produced.

A concrete operator must implement at least one of ``rows``/``batches``;
the base class derives the other (chunking or flattening respectively).
``batch_size`` is configurable per operator (the executor threads the
database's setting through); size 1 degenerates to exact tuple-at-a-time
behaviour.

The scan deserializes records via the table's storage schema; large
byte-array values surface as :class:`~repro.storage.lob.LOBRef` and stay
lazy until an expression needs them (by value or by handle).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter_ns
from typing import Callable, Iterator, List, Optional, Sequence

from ..errors import ExecutionError
from ..storage.btree import BPlusTree
from ..storage.heapfile import HeapFile
from ..storage.record import deserialize_record
from .expressions import EvalFn, eval_batch

Row = List[object]
Batch = List[Row]

#: Default number of rows per batch.  Chosen so per-invocation UDF
#: overhead (IPC hand-off, marshalling, VM entry) amortizes well while
#: batches of 10 KB byte arrays still fit comfortably in memory.
DEFAULT_BATCH_SIZE = 64


def apply_predicates(
    predicates: Sequence[EvalFn], rows: Batch
) -> Batch:
    """Filter a batch through conjuncts, batch-wise, in rank order.

    Each predicate is evaluated over the survivors of the previous one —
    exactly the rows a per-tuple conjunction would have evaluated it on,
    so UDF invocation counts are identical to tuple-at-a-time execution.
    Only strict ``True`` passes (SQL WHERE treats NULL as false).
    """
    for predicate in predicates:
        if not rows:
            break
        values = eval_batch(predicate, rows)
        rows = [row for row, value in zip(rows, values) if value is True]
    return rows


class PhysicalOp:
    batch_size: int = DEFAULT_BATCH_SIZE

    def rows(self) -> Iterator[Row]:
        for batch in self.batches():
            yield from batch

    def batches(self) -> Iterator[Batch]:
        # Fallback for sources that only implement rows() (tests, ad-hoc
        # operators): chunk the row stream at this operator's batch size.
        batch: Batch = []
        size = max(1, self.batch_size)
        for row in self.rows():
            batch.append(row)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch


def instrument_operator(op: PhysicalOp, stats) -> PhysicalOp:
    """Shadow ``op.batches`` with a counting/timing wrapper (EXPLAIN
    ANALYZE support).

    ``stats`` is any object with mutable ``rows``/``batches``/``time_ns``
    attributes (see :class:`repro.obs.profile.OperatorStats`).  The
    wrapper measures *inclusive* time — this operator plus everything
    below it — per ``next()`` and counts the batches and rows produced.
    It shadows ``batches`` on the instance, so the class stays pristine
    and ``rows()`` (which calls ``self.batches()``) flows through it
    too.  Uninstrumented operators pay nothing: the wrapper only exists
    on plans built under an active query profile.
    """
    inner = op.batches

    def batches() -> Iterator[Batch]:
        iterator = inner()
        while True:
            started = perf_counter_ns()
            try:
                batch = next(iterator)
            except StopIteration:
                stats.time_ns += perf_counter_ns() - started
                return
            stats.time_ns += perf_counter_ns() - started
            stats.batches += 1
            stats.rows += len(batch)
            yield batch

    op.batches = batches
    return op


def _set_batch_size(op: PhysicalOp, batch_size: Optional[int]) -> None:
    if batch_size is not None:
        if batch_size < 1:
            raise ExecutionError(f"batch size must be >= 1, got {batch_size}")
        op.batch_size = batch_size


class SeqScan(PhysicalOp):
    """Full scan of a heap file with optional residual predicates.

    Under a pinned :class:`~repro.storage.mvcc.Snapshot` the scan reads
    the table's frozen page image instead of the live heap — same
    records, same storage order, but never touching the buffer pool, so
    snapshot readers cannot block on (or observe) the serialized writer.
    """

    def __init__(self, pool, table_info, predicates: Sequence[EvalFn] = (),
                 batch_size: Optional[int] = None, snapshot=None):
        self.pool = pool
        self.table_info = table_info
        self.predicates = list(predicates)
        self.snapshot = snapshot
        self._types = table_info.column_types()
        _set_batch_size(self, batch_size)

    def _records(self) -> Iterator[bytes]:
        if self.snapshot is not None:
            image = self.snapshot.image_for(self.table_info.name)
            if image is not None:
                yield from image.records()
                return
        heap = HeapFile(self.pool, self.table_info.first_page)
        for __, record in heap.scan():
            yield record

    def batches(self) -> Iterator[Batch]:
        predicates = self.predicates
        types = self._types
        size = max(1, self.batch_size)
        pending: Batch = []
        for record in self._records():
            pending.append(deserialize_record(record, types))
            if len(pending) >= size:
                batch = apply_predicates(predicates, pending)
                pending = []
                if batch:
                    yield batch
        if pending:
            batch = apply_predicates(predicates, pending)
            if batch:
                yield batch


class IndexScan(PhysicalOp):
    """B+-tree range scan feeding record fetches.

    Under a pinned snapshot the B+-tree (whose pages version with the
    live heap, not with any image) cannot be walked; instead the frozen
    table image is scanned and key order is recovered with a stable sort
    on the indexed column — identical output for the append-ordered,
    unique-rid trees this engine builds, without touching live pages.
    """

    def __init__(
        self,
        pool,
        table_info,
        index_info,
        lo: Optional[int],
        hi: Optional[int],
        predicates: Sequence[EvalFn] = (),
        batch_size: Optional[int] = None,
        snapshot=None,
    ):
        self.pool = pool
        self.table_info = table_info
        self.index_info = index_info
        self.lo = lo
        self.hi = hi
        self.predicates = list(predicates)
        self.snapshot = snapshot
        self._types = table_info.column_types()
        _set_batch_size(self, batch_size)

    def _rows_in_key_order(self) -> Iterator[Row]:
        if self.snapshot is not None:
            image = self.snapshot.image_for(self.table_info.name)
            if image is not None:
                position = self.table_info.column_index(
                    self.index_info.column
                )
                lo, hi = self.lo, self.hi
                selected = []
                for record in image.records():
                    row = deserialize_record(record, self._types)
                    key = row[position]
                    if key is None:  # NULL keys are not indexed
                        continue
                    if lo is not None and key < lo:
                        continue
                    if hi is not None and key > hi:
                        continue
                    selected.append(row)
                selected.sort(key=lambda row: row[position])
                yield from selected
                return
        tree = BPlusTree(self.pool, self.index_info.root_page)
        heap = HeapFile(self.pool, self.table_info.first_page)
        for __, rid in tree.range_scan(self.lo, self.hi):
            yield deserialize_record(heap.get(rid), self._types)

    def batches(self) -> Iterator[Batch]:
        predicates = self.predicates
        size = max(1, self.batch_size)
        pending: Batch = []
        for row in self._rows_in_key_order():
            pending.append(row)
            if len(pending) >= size:
                batch = apply_predicates(predicates, pending)
                pending = []
                if batch:
                    yield batch
        if pending:
            batch = apply_predicates(predicates, pending)
            if batch:
                yield batch


class Filter(PhysicalOp):
    def __init__(self, child: PhysicalOp, predicates: Sequence[EvalFn],
                 batch_size: Optional[int] = None):
        self.child = child
        self.predicates = list(predicates)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        predicates = self.predicates
        for batch in self.child.batches():
            batch = apply_predicates(predicates, batch)
            if batch:
                yield batch


class Project(PhysicalOp):
    def __init__(self, child: PhysicalOp, exprs: Sequence[EvalFn],
                 batch_size: Optional[int] = None):
        self.child = child
        self.exprs = list(exprs)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        exprs = self.exprs
        for batch in self.child.batches():
            columns = [eval_batch(fn, batch) for fn in exprs]
            yield [
                [column[index] for column in columns]
                for index in range(len(batch))
            ]


class NestedLoopJoin(PhysicalOp):
    """Block nested-loop cross join with optional join predicates.

    The right input is materialized once (PREDATOR's serial executor did
    the same for its inner relations).  Combined rows accumulate into
    batches so join predicates — including UDF predicates — evaluate
    batch-wise.
    """

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        predicates: Sequence[EvalFn] = (),
        batch_size: Optional[int] = None,
    ):
        self.left = left
        self.right = right
        self.predicates = list(predicates)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        inner = [list(row) for row in self.right.rows()]
        predicates = self.predicates
        size = max(1, self.batch_size)
        pending: Batch = []
        for left_batch in self.left.batches():
            for left_row in left_batch:
                for right_row in inner:
                    pending.append(left_row + right_row)
                    if len(pending) >= size:
                        batch = apply_predicates(predicates, pending)
                        pending = []
                        if batch:
                            yield batch
        if pending:
            batch = apply_predicates(predicates, pending)
            if batch:
                yield batch


class Aggregate(PhysicalOp):
    """Hash aggregation over group keys."""

    def __init__(
        self,
        child: PhysicalOp,
        group_fns: Sequence[EvalFn],
        agg_specs: Sequence[tuple],  # (func, arg_fn|None, distinct)
        batch_size: Optional[int] = None,
    ):
        self.child = child
        self.group_fns = list(group_fns)
        self.agg_specs = list(agg_specs)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        groups = {}
        order: List[tuple] = []
        group_fns = self.group_fns
        agg_specs = self.agg_specs
        for batch in self.child.batches():
            # Group keys and aggregate arguments evaluate batch-wise, so
            # a UDF inside SUM(udf(x)) or GROUP BY udf(x) amortizes too.
            key_columns = [eval_batch(fn, batch) for fn in group_fns]
            arg_columns = [
                eval_batch(arg_fn, batch) if arg_fn is not None else None
                for __, arg_fn, __ in agg_specs
            ]
            for index in range(len(batch)):
                key = tuple(column[index] for column in key_columns)
                state = groups.get(key)
                if state is None:
                    state = [_AggState(func, distinct)
                             for func, __, distinct in agg_specs]
                    groups[key] = state
                    order.append(key)
                for agg_state, column in zip(state, arg_columns):
                    value = (
                        column[index] if column is not None else _COUNT_STAR
                    )
                    agg_state.update(value)
        if not order and not self.group_fns:
            # Aggregate over an empty input still yields one row.
            state = [_AggState(func, distinct)
                     for func, __, distinct in self.agg_specs]
            yield [[s.result() for s in state]]
            return
        size = max(1, self.batch_size)
        pending: Batch = []
        for key in order:
            pending.append(list(key) + [s.result() for s in groups[key]])
            if len(pending) >= size:
                yield pending
                pending = []
        if pending:
            yield pending


_COUNT_STAR = object()


class _AggState:
    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = 0.0
        self.extreme = None
        self.seen = set() if distinct else None

    def update(self, value) -> None:
        if value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return  # SQL aggregates skip NULLs
        if self.seen is not None:
            key = value
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value
        elif self.func == "min":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func == "max":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return (self.total / self.count) if self.count else None
        return self.extreme


class Sort(PhysicalOp):
    """Materializing sort.

    Key evaluation stays row-at-a-time (the ORDER-sensitive path keeps
    the seed semantics exactly); only the *output* is re-batched.
    """

    def __init__(
        self,
        child: PhysicalOp,
        key_fns: Sequence[EvalFn],
        descending: Sequence[bool],
        batch_size: Optional[int] = None,
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        materialized = list(self.child.rows())
        # Stable multi-key sort: apply keys right-to-left.
        for key_fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            materialized.sort(
                key=lambda row: _null_last(key_fn(row)), reverse=desc
            )
        size = max(1, self.batch_size)
        for start in range(0, len(materialized), size):
            yield materialized[start:start + size]


def _null_last(value):
    """Sort key wrapper: NULLs order after every real value."""
    return (value is None, value)


class Distinct(PhysicalOp):
    def __init__(self, child: PhysicalOp, batch_size: Optional[int] = None):
        self.child = child
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        seen = set()
        for batch in self.child.batches():
            fresh: Batch = []
            for row in batch:
                key = tuple(
                    bytes(v) if isinstance(v, bytearray) else v for v in row
                )
                try:
                    new = key not in seen
                except TypeError:
                    raise ExecutionError(
                        "DISTINCT over unhashable values is not supported"
                    ) from None
                if new:
                    seen.add(key)
                    fresh.append(row)
            if fresh:
                yield fresh


class Exchange(PhysicalOp):
    """Evaluate an expensive stage over child batches on a thread pool.

    The optimizer inserts this above (or inside, for pushed-down scan
    predicates) Filter/Project work whose UDFs are certified safe to run
    concurrently — pure sandboxed UDFs have no shared state, and
    isolated UDFs live in their own worker processes.  ``stage`` maps
    one input batch to one output batch (e.g. an ``apply_predicates``
    closure or a Project's column evaluation).

    Ordering guarantee: batches are dispatched in child order and
    results are *collected* in dispatch order — a FIFO of futures
    absorbs out-of-order completion — so the output row order is
    identical to serial evaluation.  At ``parallelism<=1`` the stage
    runs inline with no pool and no queue: exact serial semantics.

    At most ``parallelism + 1`` batches are in flight, so an early-exit
    consumer (Limit) wastes bounded work and memory stays bounded.
    """

    def __init__(
        self,
        child: PhysicalOp,
        stage: Callable[[Batch], Batch],
        parallelism: int = 1,
        batch_size: Optional[int] = None,
    ):
        self.child = child
        self.stage = stage
        self.parallelism = max(1, parallelism)
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        stage = self.stage
        if self.parallelism <= 1:
            for batch in self.child.batches():
                out = stage(batch)
                if out:
                    yield out
            return
        in_flight_cap = self.parallelism + 1
        with ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="exchange"
        ) as pool:
            in_flight: deque = deque()
            for batch in self.child.batches():
                in_flight.append(pool.submit(stage, batch))
                if len(in_flight) >= in_flight_cap:
                    out = in_flight.popleft().result()
                    if out:
                        yield out
            while in_flight:
                out = in_flight.popleft().result()
                if out:
                    yield out


class Limit(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: int,
                 batch_size: Optional[int] = None):
        self.child = child
        self.limit = limit
        _set_batch_size(self, batch_size)

    def batches(self) -> Iterator[Batch]:
        # Pull the child's lazy row stream, not whole batches: Limit must
        # consume no more child rows than it returns (a Volcano property
        # the tests pin down), so early exit stays row-granular.
        remaining = self.limit
        if remaining <= 0:
            return
        size = max(1, self.batch_size)
        batch: Batch = []
        for row in self.child.rows():
            batch.append(row)
            remaining -= 1
            if remaining == 0 or len(batch) >= size:
                yield batch
                batch = []
            if remaining == 0:
                return
        if batch:
            yield batch
