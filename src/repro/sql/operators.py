"""Physical (Volcano-style) operators.

Each operator exposes ``rows()``, a generator of value lists.  PREDATOR
"is not a parallel OR-DBMS ... all expressions (including UDFs) are
evaluated in a serial manner" — and so are these.

The scan deserializes records via the table's storage schema; large
byte-array values surface as :class:`~repro.storage.lob.LOBRef` and stay
lazy until an expression needs them (by value or by handle).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from ..errors import ExecutionError
from ..storage.btree import BPlusTree
from ..storage.heapfile import HeapFile
from ..storage.record import deserialize_record
from .expressions import EvalFn

Row = List[object]


class PhysicalOp:
    def rows(self) -> Iterator[Row]:
        raise NotImplementedError


class SeqScan(PhysicalOp):
    """Full scan of a heap file with optional residual predicates."""

    def __init__(self, pool, table_info, predicates: Sequence[EvalFn] = ()):
        self.pool = pool
        self.table_info = table_info
        self.predicates = list(predicates)
        self._types = table_info.column_types()

    def rows(self) -> Iterator[Row]:
        heap = HeapFile(self.pool, self.table_info.first_page)
        predicates = self.predicates
        types = self._types
        for __, record in heap.scan():
            row = deserialize_record(record, types)
            if all(p(row) is True for p in predicates):
                yield row


class IndexScan(PhysicalOp):
    """B+-tree range scan feeding record fetches."""

    def __init__(
        self,
        pool,
        table_info,
        index_info,
        lo: Optional[int],
        hi: Optional[int],
        predicates: Sequence[EvalFn] = (),
    ):
        self.pool = pool
        self.table_info = table_info
        self.index_info = index_info
        self.lo = lo
        self.hi = hi
        self.predicates = list(predicates)
        self._types = table_info.column_types()

    def rows(self) -> Iterator[Row]:
        tree = BPlusTree(self.pool, self.index_info.root_page)
        heap = HeapFile(self.pool, self.table_info.first_page)
        for __, rid in tree.range_scan(self.lo, self.hi):
            row = deserialize_record(heap.get(rid), self._types)
            if all(p(row) is True for p in self.predicates):
                yield row


class Filter(PhysicalOp):
    def __init__(self, child: PhysicalOp, predicates: Sequence[EvalFn]):
        self.child = child
        self.predicates = list(predicates)

    def rows(self) -> Iterator[Row]:
        predicates = self.predicates
        for row in self.child.rows():
            if all(p(row) is True for p in predicates):
                yield row


class Project(PhysicalOp):
    def __init__(self, child: PhysicalOp, exprs: Sequence[EvalFn]):
        self.child = child
        self.exprs = list(exprs)

    def rows(self) -> Iterator[Row]:
        exprs = self.exprs
        for row in self.child.rows():
            yield [fn(row) for fn in exprs]


class NestedLoopJoin(PhysicalOp):
    """Block nested-loop cross join with optional join predicates.

    The right input is materialized once (PREDATOR's serial executor did
    the same for its inner relations).
    """

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        predicates: Sequence[EvalFn] = (),
    ):
        self.left = left
        self.right = right
        self.predicates = list(predicates)

    def rows(self) -> Iterator[Row]:
        inner = [list(row) for row in self.right.rows()]
        predicates = self.predicates
        for left_row in self.left.rows():
            for right_row in inner:
                row = left_row + right_row
                if all(p(row) is True for p in predicates):
                    yield row


class Aggregate(PhysicalOp):
    """Hash aggregation over group keys."""

    def __init__(
        self,
        child: PhysicalOp,
        group_fns: Sequence[EvalFn],
        agg_specs: Sequence[tuple],  # (func, arg_fn|None, distinct)
    ):
        self.child = child
        self.group_fns = list(group_fns)
        self.agg_specs = list(agg_specs)

    def rows(self) -> Iterator[Row]:
        groups = {}
        order: List[tuple] = []
        for row in self.child.rows():
            key = tuple(fn(row) for fn in self.group_fns)
            state = groups.get(key)
            if state is None:
                state = [_AggState(func, distinct)
                         for func, __, distinct in self.agg_specs]
                groups[key] = state
                order.append(key)
            for agg_state, (func, arg_fn, __) in zip(state, self.agg_specs):
                value = arg_fn(row) if arg_fn is not None else _COUNT_STAR
                agg_state.update(value)
        if not order and not self.group_fns:
            # Aggregate over an empty input still yields one row.
            state = [_AggState(func, distinct)
                     for func, __, distinct in self.agg_specs]
            yield [s.result() for s in state]
            return
        for key in order:
            yield list(key) + [s.result() for s in groups[key]]


_COUNT_STAR = object()


class _AggState:
    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = 0.0
        self.extreme = None
        self.seen = set() if distinct else None

    def update(self, value) -> None:
        if value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return  # SQL aggregates skip NULLs
        if self.seen is not None:
            key = value
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value
        elif self.func == "min":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func == "max":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return (self.total / self.count) if self.count else None
        return self.extreme


class Sort(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        key_fns: Sequence[EvalFn],
        descending: Sequence[bool],
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)

    def rows(self) -> Iterator[Row]:
        materialized = list(self.child.rows())
        # Stable multi-key sort: apply keys right-to-left.
        for key_fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            materialized.sort(
                key=lambda row: _null_last(key_fn(row)), reverse=desc
            )
        return iter(materialized)


def _null_last(value):
    """Sort key wrapper: NULLs order after every real value."""
    return (value is None, value)


class Distinct(PhysicalOp):
    def __init__(self, child: PhysicalOp):
        self.child = child

    def rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows():
            key = tuple(
                bytes(v) if isinstance(v, bytearray) else v for v in row
            )
            try:
                new = key not in seen
            except TypeError:
                raise ExecutionError(
                    "DISTINCT over unhashable values is not supported"
                ) from None
            if new:
                seen.add(key)
                yield row


class Limit(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: int):
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[Row]:
        remaining = self.limit
        if remaining <= 0:
            return
        for row in self.child.rows():
            yield row
            remaining -= 1
            if remaining == 0:
                return
