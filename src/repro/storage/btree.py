"""Disk-backed B+-tree index (int64 keys -> RIDs).

PREDATOR sat on Shore, which supplied B-tree access methods; the SQL
layer here uses this index for equality and range predicates on integer
keys.  Duplicate keys are allowed (entries are unique on (key, rid)).

Node layout (one page per node)::

    [u8 is_leaf][u8 pad][u16 nkeys][u32 next]   header (8 bytes)
    leaf:      (key i64, page u32, slot u16) * nkeys    -- 14 bytes each
    internal:  child u32 * (nkeys + 1), then key i64 * nkeys

Internal node semantics: ``child[i]`` holds keys < ``key[i]``;
``child[nkeys]`` holds keys >= ``key[nkeys-1]`` (right-biased split).

Deletion is by tombstone-free removal from the leaf without rebalancing
(underflow is tolerated); this trades some space for a lot of
simplicity, and is documented behaviour.
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator, List, Optional, Tuple

from ..errors import IndexError_
from .buffer import BufferPool
from .disk import NO_PAGE
from .heapfile import RID

_NODE_HEADER = struct.Struct("<BBHI")
NODE_HEADER_SIZE = _NODE_HEADER.size
_LEAF_ENTRY = struct.Struct("<qIH")
LEAF_ENTRY_SIZE = _LEAF_ENTRY.size
_KEY = struct.Struct("<q")
_CHILD = struct.Struct("<I")


class _Node:
    """Decoded node contents (encoded back after mutation)."""

    __slots__ = ("is_leaf", "next_leaf", "keys", "rids", "children")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.next_leaf = NO_PAGE
        self.keys: List[int] = []
        self.rids: List[RID] = []       # leaves only
        self.children: List[int] = []   # internal only

    @classmethod
    def decode(cls, data: bytes) -> "_Node":
        is_leaf, __, nkeys, next_ = _NODE_HEADER.unpack_from(data, 0)
        node = cls(is_leaf=bool(is_leaf))
        node.next_leaf = next_
        pos = NODE_HEADER_SIZE
        if node.is_leaf:
            for __ in range(nkeys):
                key, page, slot = _LEAF_ENTRY.unpack_from(data, pos)
                node.keys.append(key)
                node.rids.append(RID(page, slot))
                pos += LEAF_ENTRY_SIZE
        else:
            for __ in range(nkeys + 1):
                node.children.append(_CHILD.unpack_from(data, pos)[0])
                pos += 4
            for __ in range(nkeys):
                node.keys.append(_KEY.unpack_from(data, pos)[0])
                pos += 8
        return node

    def encode(self, page_size: int) -> bytes:
        out = bytearray(page_size)
        _NODE_HEADER.pack_into(
            out, 0, int(self.is_leaf), 0, len(self.keys), self.next_leaf
        )
        pos = NODE_HEADER_SIZE
        if self.is_leaf:
            for key, rid in zip(self.keys, self.rids):
                _LEAF_ENTRY.pack_into(out, pos, key, rid.page_id, rid.slot)
                pos += LEAF_ENTRY_SIZE
        else:
            for child in self.children:
                _CHILD.pack_into(out, pos, child)
                pos += 4
            for key in self.keys:
                _KEY.pack_into(out, pos, key)
                pos += 8
        return bytes(out)


class BPlusTree:
    """The index object; ``root_page`` may change on root splits."""

    def __init__(self, pool: BufferPool, root_page: int):
        self.pool = pool
        self.root_page = root_page
        page_size = pool.disk.page_size
        self.leaf_capacity = (page_size - NODE_HEADER_SIZE) // LEAF_ENTRY_SIZE
        self.internal_capacity = (page_size - NODE_HEADER_SIZE - 4) // 12
        if self.leaf_capacity < 3 or self.internal_capacity < 3:
            raise IndexError_("page size too small for a B+-tree node")

    @classmethod
    def create(cls, pool: BufferPool) -> "BPlusTree":
        page_id, data = pool.new_page()
        data[:] = _Node(is_leaf=True).encode(pool.disk.page_size)
        pool.unpin(page_id, dirty=True)
        return cls(pool, page_id)

    # -- node I/O ------------------------------------------------------------

    def _read(self, page_id: int) -> _Node:
        with self.pool.pinned(page_id) as data:
            return _Node.decode(bytes(data))

    def _write(self, page_id: int, node: _Node) -> None:
        with self.pool.pinned(page_id, dirty=True) as data:
            data[:] = node.encode(self.pool.disk.page_size)

    def _new_node(self, node: _Node) -> int:
        page_id, data = self.pool.new_page()
        data[:] = node.encode(self.pool.disk.page_size)
        self.pool.unpin(page_id, dirty=True)
        return page_id

    # -- search ------------------------------------------------------------------

    def _find_leaf(self, key: int) -> Tuple[int, _Node]:
        """Leftmost leaf that may contain ``key``.

        Descends with ``bisect_left`` because duplicates of a split key
        can remain in the left sibling; scans then walk right through
        the leaf chain.
        """
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            page_id = node.children[index]
            node = self._read(page_id)
        return page_id, node

    def search(self, key: int) -> List[RID]:
        """All RIDs stored under ``key``."""
        return [rid for __, rid in self.range_scan(key, key)]

    def range_scan(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, RID]]:
        """Yield (key, rid) with lo <= key <= hi, in key order."""
        if lo is None:
            page_id, node = self._leftmost_leaf()
        else:
            page_id, node = self._find_leaf(lo)
        while True:
            for key, rid in zip(node.keys, node.rids):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                yield key, rid
            if node.next_leaf == NO_PAGE:
                return
            page_id = node.next_leaf
            node = self._read(page_id)

    def _leftmost_leaf(self) -> Tuple[int, _Node]:
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self._read(page_id)
        return page_id, node

    def items(self) -> Iterator[Tuple[int, RID]]:
        return self.range_scan(None, None)

    # -- insert --------------------------------------------------------------------

    def insert(self, key: int, rid: RID) -> None:
        split = self._insert(self.root_page, key, rid)
        if split is not None:
            split_key, right_page = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [split_key]
            new_root.children = [self.root_page, right_page]
            self.root_page = self._new_node(new_root)

    def _insert(
        self, page_id: int, key: int, rid: RID
    ) -> Optional[Tuple[int, int]]:
        node = self._read(page_id)
        if node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.rids.insert(index, rid)
            if len(node.keys) <= self.leaf_capacity:
                self._write(page_id, node)
                return None
            return self._split_leaf(page_id, node)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, rid)
        if split is None:
            return None
        split_key, right_page = split
        node.keys.insert(index, split_key)
        node.children.insert(index + 1, right_page)
        if len(node.keys) <= self.internal_capacity:
            self._write(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.rids = node.rids[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.rids = node.rids[:mid]
        right_page = self._new_node(right)
        node.next_leaf = right_page
        self._write(page_id, node)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        split_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        right_page = self._new_node(right)
        self._write(page_id, node)
        return split_key, right_page

    # -- delete -----------------------------------------------------------------------

    def delete(self, key: int, rid: RID) -> bool:
        """Remove one (key, rid) entry; False if it was not present.

        Leaves may underflow (no rebalancing) — acceptable for the
        workloads here and documented in the module docstring.
        """
        page_id, node = self._find_leaf(key)
        while True:
            for index, (entry_key, entry_rid) in enumerate(
                zip(node.keys, node.rids)
            ):
                if entry_key > key:
                    return False
                if entry_key == key and entry_rid == rid:
                    del node.keys[index]
                    del node.rids[index]
                    self._write(page_id, node)
                    return True
            if node.next_leaf == NO_PAGE:
                return False
            page_id = node.next_leaf
            node = self._read(page_id)

    # -- invariants (used by property tests) ---------------------------------------------

    def check_invariants(self) -> None:
        """Raise if structural invariants are violated."""
        self._check_node(self.root_page, None, None, is_root=True)
        keys = [key for key, __ in self.items()]
        if keys != sorted(keys):
            raise IndexError_("leaf chain is not sorted")

    def _check_node(
        self,
        page_id: int,
        lo: Optional[int],
        hi: Optional[int],
        is_root: bool = False,
    ) -> None:
        node = self._read(page_id)
        for key in node.keys:
            if lo is not None and key < lo:
                raise IndexError_(f"key {key} below subtree bound {lo}")
            if hi is not None and key > hi:
                raise IndexError_(f"key {key} above subtree bound {hi}")
        if node.keys != sorted(node.keys):
            raise IndexError_(f"node {page_id} keys not sorted")
        if node.is_leaf:
            if len(node.keys) != len(node.rids):
                raise IndexError_(f"leaf {page_id} keys/rids mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise IndexError_(f"internal {page_id} fanout mismatch")
        bounds = [lo] + list(node.keys) + [hi]
        for index, child in enumerate(node.children):
            self._check_node(child, bounds[index], bounds[index + 1])
