"""Versioned snapshot reads: per-table epochs and copy-on-write images.

The concurrent server needs read-only SELECTs to run fully in parallel
with each other *and* with the single serialized writer, while producing
results bit-identical to a serial execution.  The mechanism here is a
small multi-version store over the existing heap files:

* Every table carries a **version** (epoch counter).  A write statement
  mutates the live heap pages under its table's write lock and then
  *installs* a new frozen image of the table — copying only the pages
  whose :meth:`~repro.storage.buffer.BufferPool.page_version` mutation
  counter changed, i.e. copy-on-write at page granularity — and bumps
  the version.  Installs run under the database commit lock (one
  publisher at a time, even with per-table writers), and the writer
  still holds its table lock, so an image is always a statement-
  consistent cut of that table.
* A read statement **pins a snapshot**: an immutable map of table →
  (version, frozen image) taken atomically under the manager lock.
  Scans under a snapshot iterate the frozen page bytes directly and
  never touch the buffer pool, so readers cannot block on the writer
  (nor on each other) and always observe one consistent version per
  table — the one current when the statement was admitted.
* Old images are **retained** while any live snapshot pins them and
  garbage-collected on release; the current image doubles as the shared
  read cache for all snapshot readers.

Invariant: while the manager is enabled, ``image[current_version]``
exists for every table (built eagerly at :meth:`SnapshotManager.enable`,
re-installed after every write statement, and created on CREATE TABLE).
Readers therefore *never* build images and never race the writer's page
mutations.

Nothing here runs unless the manager is enabled — the embedded serial
engine and the threaded one-statement-at-a-time server read live pages
exactly as before, which is what the parity suites pin.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError
from .disk import NO_PAGE
from .page import SlottedPage


class TableImage:
    """A frozen, immutable copy of one table's heap pages at a version.

    ``pages`` is the page chain in storage order; each entry is
    ``(page_id, mutation_counter, buffer)`` where the buffer is a
    private ``bytearray`` copy (:class:`SlottedPage` reads require
    one) that is never mutated again.  The mutation counter lets
    the next install reuse unchanged pages by reference instead of
    copying them again.
    """

    __slots__ = ("version", "pages", "pins")

    def __init__(
        self, version: int, pages: List[Tuple[int, int, bytearray]]
    ):
        self.version = version
        self.pages = pages
        #: Number of live snapshots pinning this image while it is
        #: retired (the *current* image is kept regardless of pins).
        self.pins = 0

    def records(self) -> Iterator[bytes]:
        """Every live record in storage order (what ``heap.scan`` yields)."""
        for __, __, data in self.pages:
            for __, record in SlottedPage(data).records():
                yield record

    def page_count(self) -> int:
        return len(self.pages)


def _capture_chain(
    pool, first_page: int, previous: Optional[TableImage]
) -> List[Tuple[int, int, bytearray]]:
    """Copy a heap-file page chain, reusing unchanged pages.

    Runs under the writing statement's table lock + the commit lock
    (install) or before any concurrency exists (enable), so the chain
    cannot move underneath it.
    """
    reusable: Dict[int, Tuple[int, int, bytearray]] = {}
    if previous is not None:
        reusable = {entry[0]: entry for entry in previous.pages}
    pages: List[Tuple[int, int, bytearray]] = []
    page_id = first_page
    while page_id != NO_PAGE:
        mutation = pool.page_version(page_id)
        prior = reusable.get(page_id)
        if prior is not None and prior[1] == mutation:
            data = prior[2]
        else:
            with pool.pinned(page_id) as live:
                data = bytearray(live)
        next_page = SlottedPage(data).next_page
        pages.append((page_id, mutation, data))
        page_id = next_page
    return pages


class Snapshot:
    """One read statement's pinned view: table key -> frozen image."""

    __slots__ = ("_manager", "_images", "_released")

    def __init__(self, manager: "SnapshotManager",
                 images: Dict[str, TableImage]):
        self._manager = manager
        self._images = images
        self._released = False

    def image_for(self, table_name: str) -> Optional[TableImage]:
        """The pinned image, or None for tables created after the pin
        (a scan of such a table reads the live heap — it cannot have
        been mutated concurrently, since writes to it serialize behind
        its table write lock and this snapshot's statement was admitted
        before the table existed only in error cases)."""
        return self._images.get(table_name.lower())

    def versions(self) -> Dict[str, int]:
        return {
            key: image.version for key, image in self._images.items()
        }

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._manager._release(self._images)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SnapshotManager:
    """Per-database registry of table versions and frozen images."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.enabled = False
        #: table key -> current frozen image (version inside).
        self._current: Dict[str, TableImage] = {}
        #: (table key, version) -> retired image still pinned somewhere.
        self._retained: Dict[Tuple[str, int], TableImage] = {}
        #: Counters for observability (surfaced via server stats).
        self.installs = 0
        self.pages_copied = 0
        self.pages_reused = 0
        self.snapshots_pinned = 0

    # -- lifecycle ---------------------------------------------------------

    def enable(self, database) -> None:
        """Build the initial image of every table and start versioning.

        Must be called while no concurrent statements are running (the
        servers call it before accepting connections).  Idempotent.
        """
        with self._lock:
            if self.enabled:
                return
            self.enabled = True
        for table in list(database.catalog.tables.values()):
            self._install_table(database.pool, table.name,
                                table.first_page)

    # -- writer side -------------------------------------------------------

    def install(self, pool, table_name: str, first_page: int) -> None:
        """Freeze the table's post-write state as the new current image.

        Called by the writer at the end of a write statement, still
        under its table write lock and the commit lock (inside the
        write pipeline's publish step).  Copies only pages whose
        mutation counters moved; unchanged pages are shared with the
        previous image by reference.
        """
        if not self.enabled:
            return
        self._install_table(pool, table_name, first_page)

    def _install_table(self, pool, table_name: str,
                       first_page: int) -> None:
        key = table_name.lower()
        previous = self._current.get(key)
        pages = _capture_chain(pool, first_page, previous)
        if previous is not None:
            reused = {id(entry[2]) for entry in previous.pages}
            shared = sum(
                1 for entry in pages if id(entry[2]) in reused
            )
        else:
            shared = 0
        version = previous.version + 1 if previous is not None else 1
        image = TableImage(version, pages)
        with self._lock:
            self.installs += 1
            self.pages_copied += len(pages) - shared
            self.pages_reused += shared
            if previous is not None and previous.pins > 0:
                self._retained[(key, previous.version)] = previous
            self._current[key] = image

    def forget(self, table_name: str) -> None:
        """Drop a table's images (DROP TABLE).  Pinned snapshots keep
        their references alive via their own image dict."""
        key = table_name.lower()
        with self._lock:
            self._current.pop(key, None)
            for retained_key in [
                k for k in self._retained if k[0] == key
            ]:
                self._retained.pop(retained_key, None)

    # -- reader side ----------------------------------------------------------

    def pin(self) -> Snapshot:
        """Atomically pin the current image of every table."""
        if not self.enabled:
            raise StorageError(
                "snapshot reads require an enabled SnapshotManager"
            )
        with self._lock:
            images = dict(self._current)
            for image in images.values():
                image.pins += 1
            self.snapshots_pinned += 1
            return Snapshot(self, images)

    def _release(self, images: Dict[str, TableImage]) -> None:
        with self._lock:
            for key, image in images.items():
                image.pins -= 1
                if image.pins <= 0:
                    retained_key = (key, image.version)
                    current = self._current.get(key)
                    if current is not image:
                        self._retained.pop(retained_key, None)

    # -- introspection ------------------------------------------------------------

    def version_of(self, table_name: str) -> int:
        with self._lock:
            image = self._current.get(table_name.lower())
            return image.version if image is not None else 0

    def retained_count(self) -> int:
        with self._lock:
            return len(self._retained)

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "installs": self.installs,
                "pages_copied": self.pages_copied,
                "pages_reused": self.pages_reused,
                "snapshots_pinned": self.snapshots_pinned,
                "retained_images": len(self._retained),
                "versions": {
                    key: image.version
                    for key, image in sorted(self._current.items())
                },
            }
