"""The Shore-analog storage manager: disk, buffer, pages, heap files,
large objects, B+-tree indexes, and the system catalog."""

from .buffer import BufferPool
from .disk import DiskManager, PAGE_SIZE
from .heapfile import HeapFile, RID
from .lob import LOBManager, LOBRef
from .page import SlottedPage

__all__ = [
    "BufferPool",
    "DiskManager",
    "HeapFile",
    "LOBManager",
    "LOBRef",
    "PAGE_SIZE",
    "RID",
    "SlottedPage",
]
