"""Page-granular disk manager.

The bottom of the storage stack: a single file of fixed-size pages with a
free list threaded through freed pages.  Everything above (buffer pool,
heap files, LOBs, B+-trees) deals only in page ids.

File layout::

    page 0   header: magic, page size, page count, free-list head
    page 1+  data pages

Freed pages store the id of the next free page in their first 8 bytes.

**WAL mode** (``wal_mode=True``, set by a :class:`~repro.database.Database`
with a write-ahead log): the manager stops writing metadata eagerly.
The header is kept in memory and flushed only at checkpoints (its
durable copy lives in the WAL's commit records), page allocation no
longer zero-extends the file (pages reach the file only through the
buffer pool's WAL-gated flushes), and the free list is maintained by
the buffer pool (:meth:`~repro.storage.buffer.BufferPool.free_page`)
so that free-list writes are ordinary logged page dirties instead of
in-place file writes that crash recovery could not undo.  Without WAL
mode every code path is byte-identical to the seed behaviour.

Free-list mutations are **commit-granular** in WAL mode: a statement
that frees pages only buffers them in its
:class:`~repro.storage.buffer.DirtyTracker`; the buffer pool applies
them (:meth:`note_freed` + the chain-pointer page dirties) at publish
time, under the database's commit lock and in the same WAL batch as
the commit record that captures the resulting :meth:`geometry`.  Pops
from the free list (:meth:`allocate_page`) take the same lock
(:attr:`publish_lock`).  The invariant this buys: whenever a commit
record names a ``free_head``, every chain pointer reachable from it
was logged by that or an earlier committed statement — recovery can
never restore a free list that threads through unlogged page bytes,
and a page freed by a still-uncommitted statement can never be handed
back out by :meth:`allocate_page`.

All mutating entry points are serialized by an internal lock: with
per-table write locks above, two writers on disjoint tables may
allocate or free pages concurrently (allocations briefly rendezvous on
:attr:`publish_lock` in WAL mode).

Every file write funnels through the :class:`~repro.storage.wal.FaultPoint`
hook (site ``"disk.write"``), so the fault-injection harness can kill
the process at data-file writes too.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Callable, Optional

from ..errors import DiskError, SimulatedCrash

PAGE_SIZE = 8192
MAGIC = b"JAGD"
#: Sentinel for "no page" in chains and the free list.
NO_PAGE = 0xFFFFFFFF

_HEADER = struct.Struct("<4sIII")  # magic, page_size, npages, free_head


class DiskManager:
    """Allocates, reads, and writes fixed-size pages in one file.

    Pass ``path=None`` for a purely in-memory database (used heavily by
    tests and by benchmark workloads that should not measure the host
    filesystem).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = PAGE_SIZE,
        wal_mode: bool = False,
        faults=None,
    ):
        from .wal import NO_FAULTS

        if page_size < 64:
            raise DiskError(f"page size {page_size} is too small")
        self.path = path
        self.page_size = page_size
        self.wal_mode = wal_mode
        self.faults = faults if faults is not None else NO_FAULTS
        self._dead = False
        self._lock = threading.RLock()
        #: WAL mode: serializes free-list pops and commit publishes.
        #: A :class:`~repro.database.Database` replaces this with its
        #: commit lock so allocate-from-free-list cannot interleave
        #: with another statement's publish-time frees — the free list
        #: only ever changes at commit granularity.  Lock order:
        #: publish_lock < _lock < (buffer pool lock).
        self.publish_lock = threading.RLock()
        self._mem: Optional[list] = None
        self._file = None
        self._free_head = NO_PAGE
        self._npages = 1  # page 0 is the header
        #: WAL mode only: reads a freed page's next-pointer *through the
        #: buffer pool* (its latest bytes may be an unflushed frame).
        #: Installed by the pool; the legacy path never needs it.
        self.free_list_reader: Optional[Callable[[int], int]] = None
        # Unbuffered file: page writes must reach the OS when issued
        # (Python-level buffering would make a "kill -9" lose writes the
        # WAL already counts on, and would blur torn-write simulation).
        if path is None:
            self._mem = [bytes(page_size)]  # placeholder header page
        elif os.path.exists(path) and os.path.getsize(path) > 0:
            self._file = open(path, "r+b", buffering=0)
            self._load_header()
        else:
            self._file = open(path, "w+b", buffering=0)
            self._file.write(bytes(page_size))
            self._flush_header(force=True)
            # A fresh file's header must be durable before the first
            # commit is acknowledged — recovery cannot replay into a
            # file without a valid header.
            os.fsync(self._file.fileno())

    # -- header ------------------------------------------------------------

    def _read_exact(self, size: int) -> bytes:
        """Read exactly ``size`` bytes from the current position (raw
        unbuffered files may return short reads)."""
        chunks = []
        remaining = size
        while remaining:
            chunk = self._file.read(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._read_exact(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise DiskError(f"file {self.path!r} is not a database")
        magic, page_size, npages, free_head = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise DiskError(f"file {self.path!r} has bad magic")
        if page_size != self.page_size:
            raise DiskError(
                f"file {self.path!r} uses page size {page_size}, "
                f"opened with {self.page_size}"
            )
        self._npages = npages
        self._free_head = free_head

    def _flush_header(self, force: bool = False) -> None:
        """Write the header page.  In WAL mode the in-memory header is
        authoritative between checkpoints (the WAL logs it with every
        commit), so only forced (checkpoint/recovery) writes happen."""
        if self._file is None:
            return
        if self.wal_mode and not force:
            return
        self._write_at(
            0,
            _HEADER.pack(MAGIC, self.page_size, self._npages,
                         self._free_head),
        )

    # -- fault-checked file primitives --------------------------------------

    def _write_at(self, offset: int, data: bytes) -> None:
        if self._dead:
            raise SimulatedCrash("disk manager is dead (injected fault)")
        allowed = self.faults.write("disk.write", len(data))
        self._file.seek(offset)
        if allowed >= len(data):
            self._file.write(data)
        else:
            if allowed > 0:
                self._file.write(data[:allowed])
            self._dead = True
            raise SimulatedCrash(
                f"torn data-file write ({allowed}/{len(data)} bytes)"
            )

    # -- page API -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._npages

    def geometry(self) -> tuple:
        """Header state ``(npages, free_head)`` for WAL commit records."""
        with self._lock:
            return (self._npages, self._free_head)

    def set_geometry(self, npages: int, free_head: int) -> None:
        """Restore header state during recovery (replayed commit record)."""
        with self._lock:
            self._npages = npages
            self._free_head = free_head

    def allocate_page(self) -> int:
        """Return a zeroed page id, reusing the free list when possible.

        WAL mode: the free-list pop runs under :attr:`publish_lock`, so
        it serializes with commit publishes — a page freed by a
        statement becomes allocatable only once that statement's commit
        (which logs the chain-pointer image and the new geometry) has
        published.
        """
        if self.wal_mode:
            with self.publish_lock:
                return self._allocate_page_locked()
        return self._allocate_page_locked()

    def _allocate_page_locked(self) -> int:
        with self._lock:
            if self._free_head != NO_PAGE:
                page_id = self._free_head
                if self.wal_mode:
                    # The freed page's latest bytes may live in the
                    # buffer pool; read the chain pointer through it.
                    # Zeroing happens in the pool frame, not the file.
                    self._free_head = self.free_list_reader(page_id)
                else:
                    raw = self.read_page(page_id)
                    (self._free_head,) = struct.unpack_from("<I", raw, 0)
                    self.write_page(page_id, bytes(self.page_size))
                    self._flush_header()
                return page_id
            page_id = self._npages
            self._npages += 1
            if self._mem is not None:
                self._mem.append(bytes(self.page_size))
            elif not self.wal_mode:
                self._write_at(page_id * self.page_size,
                               bytes(self.page_size))
                self._flush_header()
            # WAL mode: no eager extension — the page exists only in the
            # pool until a WAL-gated flush writes it (extending the file
            # then); recovery recreates it from its logged image.
            return page_id

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list (legacy direct-write path).

        In WAL mode the buffer pool owns freeing (the free-list pointer
        write must be a logged page dirty, not an in-place file write) —
        see :meth:`~repro.storage.buffer.BufferPool.free_page`, which
        calls :meth:`note_freed` instead.
        """
        with self._lock:
            if self.wal_mode:
                raise DiskError(
                    "free_page bypasses the WAL; use BufferPool.free_page"
                )
            self._check(page_id)
            head = bytearray(self.page_size)
            struct.pack_into("<I", head, 0, self._free_head)
            self.write_page(page_id, bytes(head))
            self._free_head = page_id
            self._flush_header()

    def note_freed(self, page_id: int) -> int:
        """WAL mode: record ``page_id`` as the new free-list head;
        returns the previous head (what the page's chain pointer must
        name).  Called only at publish time
        (:meth:`~repro.storage.buffer.BufferPool.publish_frees`), with
        :attr:`publish_lock` held, so the head moves at commit
        granularity and the commit record that captures it also logs
        the chain-pointer page image."""
        with self._lock:
            self._check(page_id)
            previous = self._free_head
            self._free_head = page_id
            return previous

    def read_page(self, page_id: int) -> bytes:
        with self._lock:
            self._check(page_id)
            if self._mem is not None:
                return self._mem[page_id]
            if self._dead:
                raise SimulatedCrash("disk manager is dead (injected fault)")
            self._file.seek(page_id * self.page_size)
            data = self._read_exact(self.page_size)
            if len(data) != self.page_size:
                raise DiskError(f"short read of page {page_id}")
            return data

    def write_page(self, page_id: int, data: bytes) -> None:
        with self._lock:
            self._check(page_id)
            if len(data) != self.page_size:
                raise DiskError(
                    f"page write of {len(data)} bytes (page size "
                    f"{self.page_size})"
                )
            if self._mem is not None:
                self._mem[page_id] = bytes(data)
            else:
                self._write_at(page_id * self.page_size, data)

    def write_page_raw(self, page_id: int, data: bytes) -> None:
        """Recovery-only write: no range check (replay may write pages
        beyond the stale header's count), no fault hook (recovery runs
        before any faults are armed)."""
        if len(data) != self.page_size:
            raise DiskError("raw page write of wrong size")
        if self._mem is not None:
            while len(self._mem) <= page_id:
                self._mem.append(bytes(self.page_size))
            self._mem[page_id] = bytes(data)
            return
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def settle(self) -> None:
        """Checkpoint the file shape: sized to exactly ``npages`` pages,
        header out, everything fsynced.

        ``truncate(size)`` both shrinks (dropping pages an uncommitted
        statement allocated before a crash) and zero-extends (pages
        allocated but never flushed read as zeros, exactly like a
        flushed never-written page) — so the post-checkpoint file shape
        is a deterministic function of the committed state.
        """
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            self._file.truncate(self._npages * self.page_size)
            self._flush_header(force=True)
            self._file.flush()
            os.fsync(self._file.fileno())

    def sync(self) -> None:
        with self._lock:
            if self._file is not None:
                if self._dead:
                    raise SimulatedCrash(
                        "disk manager is dead (injected fault)"
                    )
                if not self.faults.fsync("disk.sync"):
                    self._dead = True
                    raise SimulatedCrash("data-file fsync failed")
                self._flush_header(force=self.wal_mode)
                self._file.flush()
                os.fsync(self._file.fileno())

    def close(self, sync: bool = True) -> None:
        """Close the data file.

        ``sync=False`` drops the descriptor without flushing anything —
        in particular without writing the in-memory header.  A
        WAL-backed database closes this way after a crashed checkpoint
        (dead WAL): the header may hold geometry mutated by the crashed,
        uncommitted statement, and in WAL mode only a checkpoint or
        recovery may write the header to the data file.
        """
        with self._lock:
            if self._file is not None:
                if sync and not self._dead:
                    self.sync()
                self._file.close()
                self._file = None

    def _check(self, page_id: int) -> None:
        if not 1 <= page_id < self._npages:
            raise DiskError(
                f"page id {page_id} out of range [1, {self._npages})"
            )

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
