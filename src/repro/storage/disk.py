"""Page-granular disk manager.

The bottom of the storage stack: a single file of fixed-size pages with a
free list threaded through freed pages.  Everything above (buffer pool,
heap files, LOBs, B+-trees) deals only in page ids.

File layout::

    page 0   header: magic, page size, page count, free-list head
    page 1+  data pages

Freed pages store the id of the next free page in their first 8 bytes.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from ..errors import DiskError

PAGE_SIZE = 8192
MAGIC = b"JAGD"
#: Sentinel for "no page" in chains and the free list.
NO_PAGE = 0xFFFFFFFF

_HEADER = struct.Struct("<4sIII")  # magic, page_size, npages, free_head


class DiskManager:
    """Allocates, reads, and writes fixed-size pages in one file.

    Pass ``path=None`` for a purely in-memory database (used heavily by
    tests and by benchmark workloads that should not measure the host
    filesystem).
    """

    def __init__(self, path: Optional[str] = None, page_size: int = PAGE_SIZE):
        if page_size < 64:
            raise DiskError(f"page size {page_size} is too small")
        self.path = path
        self.page_size = page_size
        self._mem: Optional[list] = None
        self._file = None
        self._free_head = NO_PAGE
        self._npages = 1  # page 0 is the header
        if path is None:
            self._mem = [bytes(page_size)]  # placeholder header page
        elif os.path.exists(path) and os.path.getsize(path) > 0:
            self._file = open(path, "r+b")
            self._load_header()
        else:
            self._file = open(path, "w+b")
            self._file.write(bytes(page_size))
            self._flush_header()

    # -- header ------------------------------------------------------------

    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise DiskError(f"file {self.path!r} is not a database")
        magic, page_size, npages, free_head = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise DiskError(f"file {self.path!r} has bad magic")
        if page_size != self.page_size:
            raise DiskError(
                f"file {self.path!r} uses page size {page_size}, "
                f"opened with {self.page_size}"
            )
        self._npages = npages
        self._free_head = free_head

    def _flush_header(self) -> None:
        if self._file is None:
            return
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(MAGIC, self.page_size, self._npages, self._free_head)
        )

    # -- page API -------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self._npages

    def allocate_page(self) -> int:
        """Return a zeroed page id, reusing the free list when possible."""
        if self._free_head != NO_PAGE:
            page_id = self._free_head
            raw = self.read_page(page_id)
            (self._free_head,) = struct.unpack_from("<I", raw, 0)
            self.write_page(page_id, bytes(self.page_size))
            self._flush_header()
            return page_id
        page_id = self._npages
        self._npages += 1
        if self._mem is not None:
            self._mem.append(bytes(self.page_size))
        else:
            self._file.seek(page_id * self.page_size)
            self._file.write(bytes(self.page_size))
            self._flush_header()
        return page_id

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list."""
        self._check(page_id)
        head = bytearray(self.page_size)
        struct.pack_into("<I", head, 0, self._free_head)
        self.write_page(page_id, bytes(head))
        self._free_head = page_id
        self._flush_header()

    def read_page(self, page_id: int) -> bytes:
        self._check(page_id)
        if self._mem is not None:
            return self._mem[page_id]
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise DiskError(f"short read of page {page_id}")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        if len(data) != self.page_size:
            raise DiskError(
                f"page write of {len(data)} bytes (page size "
                f"{self.page_size})"
            )
        if self._mem is not None:
            self._mem[page_id] = bytes(data)
        else:
            self._file.seek(page_id * self.page_size)
            self._file.write(data)

    def sync(self) -> None:
        if self._file is not None:
            self._flush_header()
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    def _check(self, page_id: int) -> None:
        if not 1 <= page_id < self._npages:
            raise DiskError(
                f"page id {page_id} out of range [1, {self._npages})"
            )

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
