"""Heap files: unordered record storage over chained slotted pages.

A heap file is a linked list of slotted pages.  Records are addressed by
RID ``(page_id, slot)``; RIDs are stable across in-place updates and
page compaction.  Inserts go to a cached "current" page and append a new
page to the chain when full — the right trade-off for the append-heavy
relations the paper's experiments build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import StorageError
from .buffer import BufferPool
from .disk import NO_PAGE
from .page import HEADER_SIZE, SLOT_SIZE, SlottedPage


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: page id + slot within the page."""

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.page_id}:{self.slot})"


class HeapFile:
    """An unordered file of records."""

    def __init__(self, pool: BufferPool, first_page: int):
        self.pool = pool
        self.first_page = first_page
        self._last_page = self._find_last_page()

    @classmethod
    def create(cls, pool: BufferPool) -> "HeapFile":
        page_id, data = pool.new_page()
        SlottedPage.format(data)
        pool.unpin(page_id, dirty=True)
        return cls(pool, page_id)

    def max_record_size(self) -> int:
        return self.pool.disk.page_size - HEADER_SIZE - SLOT_SIZE

    def _find_last_page(self) -> int:
        page_id = self.first_page
        while True:
            with self.pool.pinned(page_id) as data:
                next_page = SlottedPage(data).next_page
            if next_page == NO_PAGE:
                return page_id
            page_id = next_page

    # -- mutation -------------------------------------------------------------

    def insert(self, record: bytes) -> RID:
        """Append a record; returns its RID."""
        if len(record) > self.max_record_size():
            raise StorageError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"({self.max_record_size()}); store large values as LOBs"
            )
        data = self.pool.fetch(self._last_page)
        try:
            page = SlottedPage(data)
            slot = page.insert(record)
            if slot is not None:
                return RID(self._last_page, slot)
        finally:
            self.pool.unpin(self._last_page, dirty=True)
        # Current page full: chain a new one.
        new_id, new_data = self.pool.new_page()
        try:
            SlottedPage.format(new_data)
            slot = SlottedPage(new_data).insert(record)
            assert slot is not None, "fresh page rejected a fitting record"
        finally:
            self.pool.unpin(new_id, dirty=True)
        with self.pool.pinned(self._last_page, dirty=True) as data:
            SlottedPage(data).next_page = new_id
        self._last_page = new_id
        return RID(new_id, slot)

    def get(self, rid: RID) -> bytes:
        with self.pool.pinned(rid.page_id) as data:
            return SlottedPage(data).get(rid.slot)

    def delete(self, rid: RID) -> None:
        with self.pool.pinned(rid.page_id, dirty=True) as data:
            SlottedPage(data).delete(rid.slot)

    def update(self, rid: RID, record: bytes) -> RID:
        """Update in place when possible; otherwise move the record.

        Returns the (possibly new) RID.
        """
        if len(record) > self.max_record_size():
            raise StorageError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        with self.pool.pinned(rid.page_id, dirty=True) as data:
            if SlottedPage(data).update(rid.slot, record):
                return rid
            SlottedPage(data).delete(rid.slot)
        return self.insert(record)

    # -- scanning ----------------------------------------------------------------

    def pages(self) -> Iterator[int]:
        page_id = self.first_page
        while page_id != NO_PAGE:
            with self.pool.pinned(page_id) as data:
                next_page = SlottedPage(data).next_page
            yield page_id
            page_id = next_page

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield every live record in storage order."""
        for page_id in self.pages():
            with self.pool.pinned(page_id) as data:
                records = list(SlottedPage(data).records())
            for slot, record in records:
                yield RID(page_id, slot), record

    def count(self) -> int:
        return sum(1 for __ in self.scan())

    def drop(self) -> None:
        """Free every page of the file."""
        page_ids = list(self.pages())
        for page_id in page_ids:
            self.pool.free_page(page_id)
