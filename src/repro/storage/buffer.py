"""Buffer pool with clock (second-chance) replacement.

The storage layer's working set lives here: fixed number of frames, a
page table, pin counts, dirty tracking, and write-back on eviction.  The
pool hands out the frame's ``bytearray`` directly (zero-copy for readers
and writers); callers pin while using it and unpin with a dirty flag.

``hits`` / ``misses`` / ``evictions`` counters feed the benchmark
harness — the paper's calibration experiment (Figure 4) is dominated by
exactly these table-access costs.

Concurrency: every public method takes the pool's reentrant lock, so
frame bookkeeping (page table, pin counts, clock hand) stays consistent
when the concurrent server's read statements and per-table writers share
one pool.  The lock covers the *bookkeeping*, not the returned frame
bytes — writers on the same table are serialized above this layer (the
database's per-table write locks), writers on disjoint tables touch
disjoint frames, and snapshot readers never touch live frames at all
(they read frozen page images, see :mod:`repro.storage.mvcc`).

``page_version(page_id)`` exposes a monotonic per-page mutation counter
(bumped on every dirty unpin and page allocation).  The MVCC installer
diffs against it to copy only the pages a write statement actually
touched into the next frozen table image.

**Write-ahead logging** (``attach_wal``): each frame carries the LSN of
the last WAL record describing its contents, and the pool enforces the
WAL rule — a dirty page may reach the data file only once its latest
image is durable in the log:

* While a write statement executes, its dirtied frames are *pending*
  (``rec_lsn is PENDING``): not yet logged, therefore unevictable and
  unflushable.  Dirty pages are attributed to the statement through a
  per-thread :class:`DirtyTracker` (write statements are single-threaded
  below the operator tree, so thread identity is statement identity).
* Page frees are buffered in the tracker too (:meth:`free_page` only
  records them): the shared free list moves at *commit* granularity.
  At publish time :meth:`publish_frees` threads the freed pages onto
  the list as ordinary tracked dirties, so their chain-pointer images
  land in the same WAL batch as the commit record naming the new head.
* At commit the database logs full images of the tracker's pages and
  stamps the frames with the record LSN (:meth:`note_logged`); from then
  on eviction/flush first ensures the log is durable up to that LSN
  (one ``fsync``, shared via group commit) and only then writes the
  page.

Without an attached WAL every code path is byte-identical to the seed
behaviour.
"""

from __future__ import annotations

import struct
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set

from ..errors import BufferPoolError
from .disk import DiskManager

DEFAULT_CAPACITY = 256

#: Sentinel LSN for "dirtied by an in-flight statement, not yet logged".
PENDING = object()


class DirtyTracker:
    """One write statement's dirty-page attribution.

    ``pages`` collects every page the statement dirtied (in first-touch
    order — the WAL replays images in logged order, so determinism
    matters); ``freed`` collects the pages it returned to the free list
    (in free order — applied to the disk manager only at publish time,
    see :meth:`BufferPool.publish_frees`, so the shared free list never
    reflects an uncommitted statement); ``catalog_dirty`` is set by the
    deferred catalog when the statement changed schema or UDF
    registrations.
    """

    __slots__ = ("pages", "freed", "catalog_dirty")

    def __init__(self) -> None:
        self.pages: List[int] = []
        self.freed: List[int] = []
        self.catalog_dirty = False

    def note(self, page_id: int) -> None:
        if page_id not in self.pages:
            self.pages.append(page_id)


class _Frame:
    __slots__ = ("index", "page_id", "data", "pin_count", "dirty",
                 "referenced", "rec_lsn")

    def __init__(self, index: int, page_size: int):
        self.index = index
        self.page_id: Optional[int] = None
        self.data = bytearray(page_size)
        self.pin_count = 0
        self.dirty = False
        self.referenced = False
        #: None (clean / no WAL), PENDING (in-flight statement), or the
        #: LSN of the WAL record holding this frame's latest image.
        self.rec_lsn = None


class BufferPool:
    """Caches ``capacity`` pages of a :class:`DiskManager`."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._frames: List[_Frame] = [
            _Frame(i, disk.page_size) for i in range(capacity)
        ]
        self._table: Dict[int, int] = {}  # page_id -> frame index
        self._hand = 0
        self._lock = threading.RLock()
        #: page_id -> monotonic mutation counter (see module docstring).
        self._page_versions: Dict[int, int] = {}
        self.wal = None
        #: thread ident -> that thread's active DirtyTracker.
        self._trackers: Dict[int, DirtyTracker] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- WAL wiring --------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Enforce the WAL-before-flush rule for every dirty write-back."""
        self.wal = wal
        self.disk.free_list_reader = self._read_free_pointer

    def begin_tracking(self) -> DirtyTracker:
        """Start attributing this thread's dirty pages to a statement."""
        tracker = DirtyTracker()
        with self._lock:
            self._trackers[threading.get_ident()] = tracker
        return tracker

    def end_tracking(self, tracker: DirtyTracker) -> None:
        with self._lock:
            ident = threading.get_ident()
            if self._trackers.get(ident) is tracker:
                del self._trackers[ident]

    def current_tracker(self) -> Optional[DirtyTracker]:
        with self._lock:
            return self._trackers.get(threading.get_ident())

    def _note_dirty(self, frame: _Frame) -> None:
        """WAL bookkeeping for a freshly dirtied frame (lock held)."""
        if self.wal is None:
            return
        frame.rec_lsn = PENDING
        tracker = self._trackers.get(threading.get_ident())
        if tracker is not None:
            tracker.note(frame.page_id)

    def collect_images(self, tracker: DirtyTracker) -> List[tuple]:
        """Snapshot ``(page_id, bytes)`` for the tracker's pages.

        Pending frames are unevictable, so every tracked page is still
        resident; runs under the pool lock for a consistent copy.
        """
        with self._lock:
            images = []
            for page_id in tracker.pages:
                index = self._table.get(page_id)
                if index is None:
                    raise BufferPoolError(
                        f"tracked page {page_id} left the pool before "
                        f"it was logged"
                    )
                images.append((page_id, bytes(self._frames[index].data)))
            return images

    def note_logged(self, page_ids, lsn: int) -> None:
        """Stamp frames with the WAL record LSN covering their images."""
        with self._lock:
            for page_id in page_ids:
                index = self._table.get(page_id)
                if index is not None:
                    self._frames[index].rec_lsn = lsn

    def _writable(self, frame: _Frame) -> bool:
        """May this dirty frame be written to the data file right now?
        (Makes the log durable up to the frame's LSN first.)"""
        if self.wal is None:
            return True
        if frame.rec_lsn is PENDING:
            return False
        if frame.rec_lsn is not None:
            self.wal.ensure_durable(frame.rec_lsn)
        return True

    # -- pinning -------------------------------------------------------------

    def fetch(self, page_id: int) -> bytearray:
        """Pin a page and return its frame bytes."""
        with self._lock:
            index = self._table.get(page_id)
            if index is not None:
                self.hits += 1
                frame = self._frames[index]
            else:
                self.misses += 1
                frame = self._grab_frame()
                frame.page_id = page_id
                frame.data[:] = self.disk.read_page(page_id)
                frame.dirty = False
                frame.rec_lsn = None
                self._table[page_id] = frame.index
            frame.pin_count += 1
            frame.referenced = True
            return frame.data

    def new_page(self) -> tuple:
        """Allocate a fresh page, pinned; returns (page_id, bytes)."""
        # Allocate before taking the pool lock: in WAL mode the disk
        # manager rendezvouses with commit publishes on its publish
        # lock, and a publisher already holds it while touching pool
        # state — taking it under the pool lock would deadlock.  The
        # returned id is exclusively ours either way (popped off the
        # free list or beyond every other statement's reach), so the
        # frame installation below needs no allocation atomicity.
        page_id = self.disk.allocate_page()
        with self._lock:
            index = self._table.get(page_id)
            if index is not None:
                # WAL mode reuses free-list pages without the legacy
                # direct-to-disk zeroing, so the freed page's frame may
                # still be resident — reuse it in place.
                frame = self._frames[index]
            else:
                frame = self._grab_frame()
                frame.page_id = page_id
                self._table[page_id] = frame.index
            frame.data[:] = bytes(self.disk.page_size)
            frame.dirty = True
            frame.pin_count += 1
            frame.referenced = True
            self._bump_version(page_id)
            self._note_dirty(frame)
            return page_id, frame.data

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frame_of(page_id)
            if frame.pin_count <= 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True
                self._bump_version(page_id)
                self._note_dirty(frame)

    def _bump_version(self, page_id: int) -> None:
        self._page_versions[page_id] = (
            self._page_versions.get(page_id, 0) + 1
        )

    def page_version(self, page_id: int) -> int:
        """Mutation counter for a page (0 = never dirtied via this pool)."""
        with self._lock:
            return self._page_versions.get(page_id, 0)

    @contextmanager
    def pinned(self, page_id: int, dirty: bool = False) -> Iterator[bytearray]:
        """``with pool.pinned(pid) as data: ...`` convenience wrapper."""
        data = self.fetch(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id, dirty)

    # -- freeing -----------------------------------------------------------

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list.

        Legacy path: forget the frame, then the disk manager writes the
        free-list pointer in place (seed behaviour, byte-identical).
        WAL path: only *buffer* the free in the statement's tracker —
        the shared free list must not reflect an uncommitted statement
        (a concurrent committer captures ``disk.geometry()`` in its
        commit record, and a concurrent allocator must never be handed
        a page whose free is not yet durable).  The chain-pointer
        writes happen at publish time (:meth:`publish_frees`), under
        the commit lock, in the same WAL batch as the commit record.
        """
        with self._lock:
            if self.wal is None:
                self.drop_page(page_id)
                self.disk.free_page(page_id)
                return
            tracker = self._trackers.get(threading.get_ident())
            if tracker is None:
                raise BufferPoolError(
                    f"WAL-mode free of page {page_id} outside a tracked "
                    f"write statement (the free could never be logged)"
                )
            tracker.freed.append(page_id)

    def publish_frees(self, tracker: DirtyTracker) -> None:
        """Apply a committing statement's buffered frees.

        Runs at publish time on the statement's own thread, with the
        database's commit lock held and *before*
        :meth:`collect_images`: each freed page is threaded onto the
        free list (zeroed, chain pointer to the previous head) as an
        ordinary tracked page dirty, so the commit batch logs the
        pointer images alongside the geometry that names the new head.
        """
        with self._lock:
            for page_id in tracker.freed:
                data = self.fetch(page_id)
                try:
                    previous = self.disk.note_freed(page_id)
                    data[:] = bytes(self.disk.page_size)
                    struct.pack_into("<I", data, 0, previous)
                finally:
                    self.unpin(page_id, dirty=True)
            tracker.freed.clear()

    def _read_free_pointer(self, page_id: int) -> int:
        """Free-list traversal for the disk manager (WAL mode): the
        freed page's latest bytes may be an unflushed frame."""
        with self.pinned(page_id) as data:
            (next_free,) = struct.unpack_from("<I", data, 0)
            return next_free

    # -- write-back -------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            index = self._table.get(page_id)
            if index is None:
                return
            frame = self._frames[index]
            if frame.dirty and self._writable(frame):
                self.disk.write_page(page_id, bytes(frame.data))
                frame.dirty = False

    def flush_all(self) -> None:
        with self._lock:
            for frame in self._frames:
                if (frame.page_id is not None and frame.dirty
                        and self._writable(frame)):
                    self.disk.write_page(frame.page_id, bytes(frame.data))
                    frame.dirty = False

    def drop_page(self, page_id: int) -> None:
        """Forget a page (after it was freed on disk)."""
        with self._lock:
            index = self._table.pop(page_id, None)
            if index is not None:
                frame = self._frames[index]
                if frame.pin_count:
                    raise BufferPoolError(
                        f"cannot drop pinned page {page_id}"
                    )
                frame.page_id = None
                frame.dirty = False
                frame.referenced = False
                frame.rec_lsn = None
            self._page_versions.pop(page_id, None)

    # -- replacement --------------------------------------------------------------

    def _frame_of(self, page_id: int) -> _Frame:
        index = self._table.get(page_id)
        if index is None:
            raise BufferPoolError(f"page {page_id} is not resident")
        return self._frames[index]

    def _grab_frame(self) -> _Frame:
        """Find a free frame or evict with the clock algorithm."""
        for frame in self._frames:
            if frame.page_id is None:
                return frame
        # Clock sweep: at most two full passes (first clears ref bits).
        for __ in range(2 * self.capacity):
            frame = self._frames[self._hand]
            self._hand = (self._hand + 1) % self.capacity
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            if frame.dirty:
                # WAL rule: an unlogged (pending) page must stay in
                # memory; a logged one forces the log durable first.
                if not self._writable(frame):
                    continue
                self.disk.write_page(frame.page_id, bytes(frame.data))
            self._table.pop(frame.page_id, None)
            self.evictions += 1
            frame.page_id = None
            frame.dirty = False
            frame.rec_lsn = None
            return frame
        pending = sum(
            1 for frame in self._frames if frame.rec_lsn is PENDING
        )
        if pending:
            raise BufferPoolError(
                f"statement working set exceeds the buffer pool: "
                f"{pending} of {self.capacity} frames hold unlogged "
                f"(pending) pages that cannot be evicted before their "
                f"statement commits; raise buffer_capacity or split "
                f"the statement into smaller commit units"
            )
        raise BufferPoolError(
            "all buffer frames are pinned; cannot evict"
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
