"""Buffer pool with clock (second-chance) replacement.

The storage layer's working set lives here: fixed number of frames, a
page table, pin counts, dirty tracking, and write-back on eviction.  The
pool hands out the frame's ``bytearray`` directly (zero-copy for readers
and writers); callers pin while using it and unpin with a dirty flag.

``hits`` / ``misses`` / ``evictions`` counters feed the benchmark
harness — the paper's calibration experiment (Figure 4) is dominated by
exactly these table-access costs.

Concurrency: every public method takes the pool's reentrant lock, so
frame bookkeeping (page table, pin counts, clock hand) stays consistent
when the concurrent server's read statements and its single writer share
one pool.  The lock covers the *bookkeeping*, not the returned frame
bytes — writers are serialized above this layer (the database write
lock), and snapshot readers never touch live frames at all (they read
frozen page images, see :mod:`repro.storage.mvcc`).

``page_version(page_id)`` exposes a monotonic per-page mutation counter
(bumped on every dirty unpin and page allocation).  The MVCC installer
diffs against it to copy only the pages a write statement actually
touched into the next frozen table image.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..errors import BufferPoolError
from .disk import DiskManager

DEFAULT_CAPACITY = 256


class _Frame:
    __slots__ = ("index", "page_id", "data", "pin_count", "dirty",
                 "referenced")

    def __init__(self, index: int, page_size: int):
        self.index = index
        self.page_id: Optional[int] = None
        self.data = bytearray(page_size)
        self.pin_count = 0
        self.dirty = False
        self.referenced = False


class BufferPool:
    """Caches ``capacity`` pages of a :class:`DiskManager`."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._frames: List[_Frame] = [
            _Frame(i, disk.page_size) for i in range(capacity)
        ]
        self._table: Dict[int, int] = {}  # page_id -> frame index
        self._hand = 0
        self._lock = threading.RLock()
        #: page_id -> monotonic mutation counter (see module docstring).
        self._page_versions: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pinning -------------------------------------------------------------

    def fetch(self, page_id: int) -> bytearray:
        """Pin a page and return its frame bytes."""
        with self._lock:
            index = self._table.get(page_id)
            if index is not None:
                self.hits += 1
                frame = self._frames[index]
            else:
                self.misses += 1
                frame = self._grab_frame()
                frame.page_id = page_id
                frame.data[:] = self.disk.read_page(page_id)
                frame.dirty = False
                self._table[page_id] = frame.index
            frame.pin_count += 1
            frame.referenced = True
            return frame.data

    def new_page(self) -> tuple:
        """Allocate a fresh page, pinned; returns (page_id, bytes)."""
        with self._lock:
            page_id = self.disk.allocate_page()
            frame = self._grab_frame()
            frame.page_id = page_id
            frame.data[:] = bytes(self.disk.page_size)
            frame.dirty = True
            frame.pin_count = 1
            frame.referenced = True
            self._table[page_id] = frame.index
            self._bump_version(page_id)
            return page_id, frame.data

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frame_of(page_id)
            if frame.pin_count <= 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True
                self._bump_version(page_id)

    def _bump_version(self, page_id: int) -> None:
        self._page_versions[page_id] = (
            self._page_versions.get(page_id, 0) + 1
        )

    def page_version(self, page_id: int) -> int:
        """Mutation counter for a page (0 = never dirtied via this pool)."""
        with self._lock:
            return self._page_versions.get(page_id, 0)

    @contextmanager
    def pinned(self, page_id: int, dirty: bool = False) -> Iterator[bytearray]:
        """``with pool.pinned(pid) as data: ...`` convenience wrapper."""
        data = self.fetch(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id, dirty)

    # -- write-back -------------------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            index = self._table.get(page_id)
            if index is None:
                return
            frame = self._frames[index]
            if frame.dirty:
                self.disk.write_page(page_id, bytes(frame.data))
                frame.dirty = False

    def flush_all(self) -> None:
        with self._lock:
            for frame in self._frames:
                if frame.page_id is not None and frame.dirty:
                    self.disk.write_page(frame.page_id, bytes(frame.data))
                    frame.dirty = False

    def drop_page(self, page_id: int) -> None:
        """Forget a page (after it was freed on disk)."""
        with self._lock:
            index = self._table.pop(page_id, None)
            if index is not None:
                frame = self._frames[index]
                if frame.pin_count:
                    raise BufferPoolError(
                        f"cannot drop pinned page {page_id}"
                    )
                frame.page_id = None
                frame.dirty = False
                frame.referenced = False
            self._page_versions.pop(page_id, None)

    # -- replacement --------------------------------------------------------------

    def _frame_of(self, page_id: int) -> _Frame:
        index = self._table.get(page_id)
        if index is None:
            raise BufferPoolError(f"page {page_id} is not resident")
        return self._frames[index]

    def _grab_frame(self) -> _Frame:
        """Find a free frame or evict with the clock algorithm."""
        for frame in self._frames:
            if frame.page_id is None:
                return frame
        # Clock sweep: at most two full passes (first clears ref bits).
        for __ in range(2 * self.capacity):
            frame = self._frames[self._hand]
            self._hand = (self._hand + 1) % self.capacity
            if frame.pin_count > 0:
                continue
            if frame.referenced:
                frame.referenced = False
                continue
            if frame.dirty:
                self.disk.write_page(frame.page_id, bytes(frame.data))
            self._table.pop(frame.page_id, None)
            self.evictions += 1
            frame.page_id = None
            frame.dirty = False
            return frame
        raise BufferPoolError(
            "all buffer frames are pinned; cannot evict"
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
