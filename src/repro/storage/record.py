"""Record (tuple) serialization.

Converts typed field values to/from the byte strings stored in slotted
pages.  The format is self-delimiting per field:

* a null bitmap (one bit per column) leads the record;
* INT / FLOAT are fixed 8 bytes, BOOL one byte;
* STRING / BYTES carry a u32 length prefix;
* a BYTES value stored out-of-line is the sentinel length ``0xFFFFFFFF``
  followed by the LOB reference (first page u32 + length u64) — the SQL
  layer decides when to spill to a LOB, this layer just round-trips
  either representation;
* FLOATARR is a u32 element count plus packed doubles.
"""

from __future__ import annotations

import enum
import struct
from array import array
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import RecordError
from .lob import LOBRef

_LOB_SENTINEL = 0xFFFFFFFF
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_LOBREF = struct.Struct("<IQ")


class ColumnType(enum.Enum):
    """Storage-level column types."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    BYTES = "bytes"
    FLOATARR = "floatarr"


FieldValue = Union[None, int, float, bool, str, bytes, LOBRef, array, list]


def serialize_record(
    values: Sequence[FieldValue], types: Sequence[ColumnType]
) -> bytes:
    """Encode one tuple."""
    if len(values) != len(types):
        raise RecordError(
            f"{len(values)} values for {len(types)} columns"
        )
    ncols = len(types)
    bitmap = bytearray((ncols + 7) // 8)
    out = bytearray()
    for index, (value, col_type) in enumerate(zip(values, types)):
        if value is None:
            bitmap[index // 8] |= 1 << (index % 8)
            continue
        out += _encode_field(value, col_type, index)
    return bytes(bitmap) + bytes(out)


def deserialize_record(
    data: bytes, types: Sequence[ColumnType]
) -> List[FieldValue]:
    """Decode one tuple."""
    ncols = len(types)
    bitmap_size = (ncols + 7) // 8
    if len(data) < bitmap_size:
        raise RecordError("record shorter than its null bitmap")
    bitmap = data[:bitmap_size]
    pos = bitmap_size
    values: List[FieldValue] = []
    for index, col_type in enumerate(types):
        if bitmap[index // 8] & (1 << (index % 8)):
            values.append(None)
            continue
        value, pos = _decode_field(data, pos, col_type, index)
        values.append(value)
    if pos != len(data):
        raise RecordError(
            f"{len(data) - pos} trailing bytes after record body"
        )
    return values


def _encode_field(value: FieldValue, col_type: ColumnType, index: int) -> bytes:
    if col_type is ColumnType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise RecordError(f"column {index}: expected int, got {value!r}")
        return _I64.pack(value)
    if col_type is ColumnType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RecordError(f"column {index}: expected float, got {value!r}")
        return _F64.pack(float(value))
    if col_type is ColumnType.BOOL:
        if not isinstance(value, bool):
            raise RecordError(f"column {index}: expected bool, got {value!r}")
        return b"\x01" if value else b"\x00"
    if col_type is ColumnType.STRING:
        if not isinstance(value, str):
            raise RecordError(f"column {index}: expected str, got {value!r}")
        raw = value.encode("utf-8")
        return _U32.pack(len(raw)) + raw
    if col_type is ColumnType.BYTES:
        if isinstance(value, LOBRef):
            return _U32.pack(_LOB_SENTINEL) + _LOBREF.pack(
                value.first_page, value.length
            )
        if isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) >= _LOB_SENTINEL:
                raise RecordError("inline bytes value too large")
            return _U32.pack(len(raw)) + raw
        raise RecordError(f"column {index}: expected bytes, got {value!r}")
    if col_type is ColumnType.FLOATARR:
        if isinstance(value, array) and value.typecode == "d":
            raw = value.tobytes()
        elif isinstance(value, (list, tuple)):
            raw = array("d", [float(x) for x in value]).tobytes()
        else:
            raise RecordError(
                f"column {index}: expected float array, got {value!r}"
            )
        return _U32.pack(len(raw) // 8) + raw
    raise RecordError(f"unknown column type {col_type}")


def _decode_field(
    data: bytes, pos: int, col_type: ColumnType, index: int
) -> Tuple[FieldValue, int]:
    try:
        if col_type is ColumnType.INT:
            return _I64.unpack_from(data, pos)[0], pos + 8
        if col_type is ColumnType.FLOAT:
            return _F64.unpack_from(data, pos)[0], pos + 8
        if col_type is ColumnType.BOOL:
            return data[pos] != 0, pos + 1
        if col_type is ColumnType.STRING:
            (n,) = _U32.unpack_from(data, pos)
            pos += 4
            _need(data, pos, n)
            return data[pos:pos + n].decode("utf-8"), pos + n
        if col_type is ColumnType.BYTES:
            (n,) = _U32.unpack_from(data, pos)
            pos += 4
            if n == _LOB_SENTINEL:
                first_page, length = _LOBREF.unpack_from(data, pos)
                return LOBRef(first_page, length), pos + _LOBREF.size
            _need(data, pos, n)
            return bytes(data[pos:pos + n]), pos + n
        if col_type is ColumnType.FLOATARR:
            (count,) = _U32.unpack_from(data, pos)
            pos += 4
            _need(data, pos, 8 * count)
            values = array("d")
            values.frombytes(data[pos:pos + 8 * count])
            return values, pos + 8 * count
    except struct.error as exc:
        raise RecordError(f"column {index}: truncated record ({exc})") from None
    raise RecordError(f"unknown column type {col_type}")


def _need(data: bytes, pos: int, n: int) -> None:
    if pos + n > len(data):
        raise RecordError("truncated record body")
