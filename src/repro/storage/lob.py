"""Large-object (LOB) storage.

The paper's workloads revolve around big attribute values — 10,000-byte
benchmark bytearrays, images for ``REDNESS``, time series for
``InvestVal`` — which do not fit a slotted page.  Values above the SQL
layer's inline threshold are stored here as a chain of dedicated pages,
and the record holds only a small :class:`LOBRef`.

Crucially for the paper's callback experiments, :meth:`LOBManager.read_range`
serves *partial* reads: a UDF holding a handle can ask for pixel ranges
through ``cb_lob_read`` without the server materializing the whole
object (the Clip()/Lookup() pattern of Section 5.5).

Page layout::

    [next_page u32][used u16]  header (6 bytes)
    payload bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import StorageError
from .buffer import BufferPool
from .disk import NO_PAGE

_LOB_HEADER = struct.Struct("<IH")
LOB_HEADER_SIZE = _LOB_HEADER.size


@dataclass(frozen=True)
class LOBRef:
    """Pointer to a stored large object (what the record actually holds)."""

    first_page: int
    length: int


class LOBManager:
    """Reads and writes page-chained large objects."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self.payload = pool.disk.page_size - LOB_HEADER_SIZE

    # -- write ------------------------------------------------------------

    def write(self, data: bytes) -> LOBRef:
        """Store ``data``; returns its reference.

        Zero-length objects still get one page so the reference always
        points at something readable.
        """
        first_page = NO_PAGE
        prev_page = NO_PAGE
        offset = 0
        total = len(data)
        while True:
            chunk = data[offset:offset + self.payload]
            page_id, page = self.pool.new_page()
            _LOB_HEADER.pack_into(page, 0, NO_PAGE, len(chunk))
            page[LOB_HEADER_SIZE:LOB_HEADER_SIZE + len(chunk)] = chunk
            self.pool.unpin(page_id, dirty=True)
            if first_page == NO_PAGE:
                first_page = page_id
            if prev_page != NO_PAGE:
                with self.pool.pinned(prev_page, dirty=True) as prev:
                    struct.pack_into("<I", prev, 0, page_id)
            prev_page = page_id
            offset += len(chunk)
            if offset >= total:
                break
        return LOBRef(first_page=first_page, length=total)

    # -- read ----------------------------------------------------------------

    def _chunks(self, ref: LOBRef) -> Iterator[Tuple[int, bytes]]:
        """Yield (object_offset, chunk bytes) for each page of the chain."""
        page_id = ref.first_page
        offset = 0
        while page_id != NO_PAGE:
            with self.pool.pinned(page_id) as page:
                next_page, used = _LOB_HEADER.unpack_from(page, 0)
                chunk = bytes(page[LOB_HEADER_SIZE:LOB_HEADER_SIZE + used])
            yield offset, chunk
            offset += len(chunk)
            page_id = next_page

    def read(self, ref: LOBRef) -> bytes:
        parts = [chunk for __, chunk in self._chunks(ref)]
        data = b"".join(parts)
        if len(data) != ref.length:
            raise StorageError(
                f"LOB at page {ref.first_page} has {len(data)} bytes, "
                f"reference says {ref.length}"
            )
        return data

    def read_range(self, ref: LOBRef, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` (clamped to end)."""
        if offset < 0 or length < 0:
            raise StorageError("negative offset/length in LOB range read")
        end = min(offset + length, ref.length)
        if offset >= end:
            return b""
        parts = []
        for chunk_offset, chunk in self._chunks(ref):
            chunk_end = chunk_offset + len(chunk)
            if chunk_end <= offset:
                continue
            if chunk_offset >= end:
                break
            lo = max(offset - chunk_offset, 0)
            hi = min(end - chunk_offset, len(chunk))
            parts.append(chunk[lo:hi])
        return b"".join(parts)

    def free(self, ref: LOBRef) -> None:
        page_id = ref.first_page
        while page_id != NO_PAGE:
            with self.pool.pinned(page_id) as page:
                (next_page,) = struct.unpack_from("<I", page, 0)
            self.pool.free_page(page_id)
            page_id = next_page

    # -- handle view -------------------------------------------------------------

    def handle(self, ref: LOBRef) -> "LOBHandle":
        return LOBHandle(self, ref)


class LOBHandle:
    """Callback-friendly view of one LOB (duck-typed for the broker)."""

    def __init__(self, manager: LOBManager, ref: LOBRef):
        self._manager = manager
        self.ref = ref

    def length(self) -> int:
        return self.ref.length

    def read_range(self, offset: int, length: int) -> bytes:
        return self._manager.read_range(self.ref, offset, length)

    def read_all(self) -> bytes:
        return self._manager.read(self.ref)
