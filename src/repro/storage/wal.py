"""Write-ahead log: physical redo, statement commits, group commit.

The durability contract the paper's security story needs but the seed
engine lacked: a misbehaving UDF (or a plain ``kill -9``) may take the
process down mid-statement, and *committed* statements must survive
while the half-applied one vanishes.  The mechanism is a classic
redo-only WAL specialized to this engine's statement-granular writes:

* **Records** are length-prefixed and CRC-checked::

      [length u32][crc32 u32][type u8][payload ...]

  ``length`` counts type+payload; ``crc32`` covers the same bytes, so a
  torn append (partial OS write, partial simulated write) is detected
  and the tail discarded.  Three record types:

  - ``PAGE`` — full physical image of one data page (``page_id u32`` +
    ``page_size`` bytes).  Full images keep redo idempotent and byte-
    deterministic: replaying a committed prefix reproduces the exact
    page bytes the crashed run had.
  - ``CATALOG`` — the complete catalog JSON blob, logged whenever a
    statement changed schema or UDF registrations (DDL, CREATE
    FUNCTION, index root splits).
  - ``COMMIT`` — the statement's commit marker: a monotonically
    increasing statement sequence number plus the disk header state
    (``npages``, ``free_head``) as of commit.

* **Protocol.**  A mutating statement executes against the buffer pool
  only (no data-file writes — the pool refuses to flush a page whose
  latest image is not yet durable in the log, see
  :class:`~repro.storage.buffer.BufferPool`).  At statement end the
  writer appends one PAGE record per dirtied page, a CATALOG record if
  the schema moved, then the COMMIT marker, and finally waits for an
  ``fsync`` covering its commit LSN before acknowledging the client.
  LSNs are byte offsets into the log file.

* **Group commit.**  The fsync wait is a leader/follower gate: the
  first committer becomes the leader, optionally sleeps
  ``group_window`` seconds so writers arriving in the window get their
  records into the same ``fsync``, then syncs once and wakes every
  waiter whose LSN the sync covered.  With per-table write locks above
  (disjoint-table writers no longer serialize), one fsync regularly
  retires several statements; ``stats()`` records the batch sizes.

* **Recovery** (:meth:`WriteAheadLog.recover`) scans the log from the
  start, discards the torn tail at the first short or CRC-failing
  record, and redoes every *complete* committed batch in order: page
  images are written back, the header is restored from the last commit
  marker, the data file is truncated to exactly the committed page
  count, and the last committed catalog blob (if any) is reinstated.
  Records after the last COMMIT belong to the in-flight statement and
  are ignored — no committed statement lost, no uncommitted one
  visible.  Recovery ends with a checkpoint (flush + truncate), so it
  is idempotent and the log never grows across restarts.

* **Checkpoints** (clean shutdown, ``Database.flush()``): everything
  the log describes is flushed to the data file and the log truncated
  to empty.

Fault injection: every file write and fsync in this module (and the
data-file writes in :mod:`~repro.storage.disk`) funnels through a
:class:`FaultPoint`, whose default implementation is a no-op.  The test
harness (``tests/storage/faults.py``) substitutes deterministic
implementations that kill the process mid-write, tear an append short,
or fail an fsync — after which the log (like a dead process) refuses
all further work.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import SimulatedCrash, WALError

#: Record types.
REC_PAGE = 1
REC_CATALOG = 2
REC_COMMIT = 3

_RECORD_HEADER = struct.Struct("<IIB")  # length (type+payload), crc, type
_PAGE_PREFIX = struct.Struct("<I")      # page_id
_COMMIT_BODY = struct.Struct("<QII")    # statement seq, npages, free_head


class FaultPoint:
    """Deterministic fault-injection hook for storage write paths.

    The storage layer calls :meth:`write` before every file write and
    :meth:`fsync` before every ``os.fsync``.  The default instance
    (``NO_FAULTS``) permits everything; the test harness substitutes
    subclasses that raise :class:`~repro.errors.SimulatedCrash` at a
    chosen operation (kill), return a short byte count (torn write), or
    return ``False`` from :meth:`fsync` (failed fsync — the engine must
    refuse to acknowledge the commit).
    """

    def write(self, site: str, size: int) -> int:
        """About to write ``size`` bytes at ``site``; return how many
        bytes may actually reach the file (crash follows if short)."""
        return size

    def fsync(self, site: str) -> bool:
        """About to fsync at ``site``; False simulates a failed fsync."""
        return True

    def note_durable(self, site: str, offset: int) -> None:
        """An fsync at ``site`` succeeded with ``offset`` bytes durable
        (the harness records this to simulate lost page-cache tails)."""


#: Shared no-op instance used when no faults are injected.
NO_FAULTS = FaultPoint()


def _encode_record(rec_type: int, payload: bytes) -> bytes:
    body = bytes([rec_type]) + payload
    return _RECORD_HEADER.pack(
        len(body), zlib.crc32(body) & 0xFFFFFFFF, rec_type
    ) + payload


class RecoveryResult:
    """What :meth:`WriteAheadLog.recover` found and redid."""

    __slots__ = ("statements", "pages_redone", "catalog_blob",
                 "torn_bytes", "scanned_bytes")

    def __init__(self) -> None:
        self.statements = 0      # committed statements redone
        self.pages_redone = 0    # PAGE records applied
        self.catalog_blob: Optional[bytes] = None
        self.torn_bytes = 0      # discarded tail length
        self.scanned_bytes = 0


class WriteAheadLog:
    """A single-file, statement-granular physical redo log."""

    def __init__(
        self,
        path: str,
        group_window: float = 0.0,
        faults: FaultPoint = NO_FAULTS,
    ):
        self.path = path
        self.group_window = group_window
        self.faults = faults
        self._file = None
        self._lock = threading.Lock()       # append / fsync / truncate
        self._gate = threading.Condition()  # group-commit leader gate
        self._syncing = False
        self._dead = False
        #: LSNs are *monotonic*: byte offset into the logical log stream,
        #: which survives truncation (``_base`` is the stream offset of
        #: the current file's byte 0).  A checkpoint truncates the file
        #: and marks everything up to ``_tail`` durable — true, since the
        #: checkpoint flushed it all to the data file — so a commit LSN
        #: handed out just before a checkpoint still retires.
        self._base = 0
        self._tail = 0          # logical append offset (next LSN)
        self._durable = 0       # logical offset covered by the last fsync
        self._next_seq = 1
        #: commit LSNs appended but not yet covered by an fsync — the
        #: group-commit batch accounting reads (and drains) this.
        self._pending_commits: List[int] = []
        # -- counters (db.stats()["wal"]) --
        self.appends = 0            # records appended
        self.statements_logged = 0  # commit markers appended
        self.fsyncs = 0
        self.bytes_appended = 0
        self.commit_batches: List[int] = []   # statements per fsync
        self.recovered_statements = 0
        self.checkpoints = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        """Open (creating if needed) the log file for appending.

        Called after :meth:`recover`, which reads and truncates the file
        through its own descriptor.
        """
        # Unbuffered: a torn simulated write must land exactly as many
        # bytes in the file as the fault permitted, and fsync must cover
        # precisely what was written — Python-level buffering would blur
        # both.
        self._file = open(self.path, "ab", buffering=0)
        self._tail = self._base + self._file.tell()
        self._durable = self._tail

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None

    def _require_alive(self) -> None:
        if self._dead:
            raise SimulatedCrash("write-ahead log is dead (injected fault)")
        if self._file is None:
            raise WALError("write-ahead log is not open")

    # -- append side -------------------------------------------------------

    def log_statement(
        self,
        pages: List[Tuple[int, bytes]],
        catalog_blob: Optional[bytes],
        header: Tuple[int, int],
    ) -> int:
        """Append one statement's redo batch; returns its commit LSN.

        ``pages`` is ``[(page_id, full image), ...]``; ``header`` is the
        disk geometry ``(npages, free_head)`` as of commit.  Appends are
        serialized and atomic with respect to other appenders, but NOT
        yet durable — callers follow up with :meth:`commit_wait`.
        """
        with self._lock:
            self._require_alive()
            for page_id, image in pages:
                self._append(
                    _encode_record(
                        REC_PAGE, _PAGE_PREFIX.pack(page_id) + bytes(image)
                    )
                )
            if catalog_blob is not None:
                self._append(_encode_record(REC_CATALOG, catalog_blob))
            seq = self._next_seq
            self._next_seq += 1
            npages, free_head = header
            self._append(
                _encode_record(
                    REC_COMMIT, _COMMIT_BODY.pack(seq, npages, free_head)
                )
            )
            self.statements_logged += 1
            lsn = self._tail
            with self._gate:
                self._pending_commits.append(lsn)
            return lsn

    def _append(self, record: bytes) -> None:
        """One record write, fault-checked.  Caller holds ``_lock``."""
        allowed = self.faults.write("wal.append", len(record))
        if allowed >= len(record):
            self._file.write(record)
            self._tail += len(record)
            self.appends += 1
            self.bytes_appended += len(record)
        else:
            # Torn append: the permitted prefix reaches the file (the
            # recovery scan must see it), then the process "dies".
            if allowed > 0:
                self._file.write(record[:allowed])
                self._tail += allowed
            self._dead = True
            with self._gate:
                self._gate.notify_all()
            raise SimulatedCrash(
                f"torn WAL append ({allowed}/{len(record)} bytes)"
            )

    # -- durability --------------------------------------------------------

    def commit_wait(self, lsn: int, window: Optional[float] = None) -> None:
        """Block until an fsync covers ``lsn`` (group commit).

        The first waiter becomes the fsync leader; with a group window
        it sleeps briefly so concurrent writers can append their own
        commit records first, then one fsync retires every waiter whose
        LSN it covered.  Followers just wait on the gate.
        """
        window = self.group_window if window is None else window
        while True:
            with self._gate:
                if self._dead:
                    raise SimulatedCrash("write-ahead log is dead")
                if self._durable >= lsn:
                    return
                if not self._syncing:
                    self._syncing = True
                    break
                self._gate.wait(timeout=1.0)
        try:
            if window > 0:
                time.sleep(window)
            self._sync()
        finally:
            with self._gate:
                self._syncing = False
                self._gate.notify_all()

    def ensure_durable(self, lsn: int) -> None:
        """Synchronous no-window variant (buffer-pool flush gate)."""
        self.commit_wait(lsn, window=0.0)

    def flushed_lsn(self) -> int:
        with self._gate:
            return self._durable

    def _sync(self) -> None:
        """One fsync covering everything appended so far."""
        with self._lock:
            self._require_alive()
            target = self._tail
            if not self.faults.fsync("wal.fsync"):
                # A failed fsync means the commit cannot be acknowledged;
                # a real engine PANICs here rather than lie about
                # durability.  Mark the log dead so every later operation
                # fails too.
                self._dead = True
                with self._gate:
                    self._gate.notify_all()
                raise WALError(
                    "WAL fsync failed; refusing to acknowledge commits"
                )
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            # The harness tracks *file* offsets (to truncate a simulated
            # lost page-cache tail), so subtract the stream base.
            self.faults.note_durable("wal.fsync", target - self._base)
        with self._gate:
            self._durable = max(self._durable, target)
            retired = [
                c for c in self._pending_commits if c <= self._durable
            ]
            if retired:
                self._pending_commits = [
                    c for c in self._pending_commits if c > self._durable
                ]
                self.commit_batches.append(len(retired))

    # -- recovery ----------------------------------------------------------

    def recover(self, disk, catalog_path: Optional[str]) -> RecoveryResult:
        """Scan the log, redo committed statements, reset the log.

        Must run before any :class:`~repro.storage.buffer.BufferPool`
        caches pages (pages are rewritten underneath).  ``disk`` is the
        freshly opened :class:`~repro.storage.disk.DiskManager`.
        """
        result = RecoveryResult()
        if not os.path.exists(self.path):
            self.open()
            return result
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        batch_pages: List[Tuple[int, bytes]] = []
        batch_catalog: Optional[bytes] = None
        last_header: Optional[Tuple[int, int]] = None
        last_catalog: Optional[bytes] = None
        last_seq = 0
        while True:
            if offset + _RECORD_HEADER.size > len(raw):
                break
            length, crc, rec_type = _RECORD_HEADER.unpack_from(raw, offset)
            body_start = offset + _RECORD_HEADER.size
            body_end = body_start + length - 1
            if length < 1 or body_end > len(raw):
                break  # torn length or torn body
            body = bytes([rec_type]) + raw[body_start:body_end]
            if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                break  # torn/corrupt record
            payload = raw[body_start:body_end]
            if rec_type == REC_PAGE:
                if len(payload) <= _PAGE_PREFIX.size:
                    break  # malformed despite CRC: treat as corruption
                (page_id,) = _PAGE_PREFIX.unpack_from(payload, 0)
                batch_pages.append(
                    (page_id, payload[_PAGE_PREFIX.size:])
                )
            elif rec_type == REC_CATALOG:
                batch_catalog = payload
            elif rec_type == REC_COMMIT:
                if len(payload) != _COMMIT_BODY.size:
                    break  # malformed despite CRC: treat as corruption
                seq, npages, free_head = _COMMIT_BODY.unpack(payload)
                if seq <= last_seq:
                    break  # out-of-order marker: treat as corruption
                for page_id, image in batch_pages:
                    disk.write_page_raw(page_id, image)
                    result.pages_redone += 1
                if batch_catalog is not None:
                    last_catalog = batch_catalog
                last_header = (npages, free_head)
                last_seq = seq
                result.statements += 1
                batch_pages = []
                batch_catalog = None
            else:
                break  # unknown type: treat as corruption
            offset = body_end
        result.scanned_bytes = offset
        result.torn_bytes = len(raw) - offset
        if last_header is not None:
            npages, free_head = last_header
            disk.set_geometry(npages, free_head)
        if result.statements:
            # Make the redone state the checkpoint: sized exactly to the
            # committed page count, header flushed, everything fsynced.
            disk.settle()
        if last_catalog is not None and catalog_path is not None:
            tmp = catalog_path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(last_catalog)
            os.replace(tmp, catalog_path)
        result.catalog_blob = last_catalog
        # The log's contents now live in the data file + catalog; start
        # a fresh log so recovery is idempotent and the file is bounded.
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.recovered_statements = result.statements
        self.open()
        return result

    # -- checkpointing -----------------------------------------------------

    def truncate(self) -> None:
        """Reset the log file to empty (after a checkpoint flushed its
        state to the data file).  LSNs stay monotonic: everything logged
        so far becomes durable by definition (it now lives in the data
        file), so stragglers waiting in :meth:`commit_wait` retire."""
        with self._lock:
            self._require_alive()
            self._file.truncate(0)
            self._file.seek(0)
            os.fsync(self._file.fileno())
            self._base = self._tail
            self.checkpoints += 1
            with self._gate:
                self._durable = self._tail
                if self._pending_commits:
                    self.commit_batches.append(len(self._pending_commits))
                    self._pending_commits.clear()
                self._gate.notify_all()

    def tail_lsn(self) -> int:
        with self._lock:
            return self._tail

    def size(self) -> int:
        """Current log *file* length in bytes."""
        with self._lock:
            return self._tail - self._base

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._gate:
            batches = list(self.commit_batches)
            durable = self._durable
        grouped = [b for b in batches if b > 1]
        return {
            "appends": self.appends,
            "statements_logged": self.statements_logged,
            "fsyncs": self.fsyncs,
            "bytes_appended": self.bytes_appended,
            "durable_lsn": durable,
            "group_window": self.group_window,
            "commit_batches": len(batches),
            "grouped_commits": sum(grouped),
            "max_batch": max(batches) if batches else 0,
            "mean_batch": (
                sum(batches) / len(batches) if batches else 0.0
            ),
            "recovered_statements": self.recovered_statements,
            "checkpoints": self.checkpoints,
        }
