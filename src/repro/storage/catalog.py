"""System catalog: tables, columns, indexes, and registered UDFs.

The catalog is the authoritative map from names to storage locations
(heap-file first pages, index roots) and from UDF names to their
definitions (language, design, payload).  It is persisted as a JSON
sidecar next to the page file — the page file holds data, the catalog
holds the directory to it.  (PREDATOR kept this in Shore root objects;
JSON keeps the same information inspectable.)
"""

from __future__ import annotations

import base64
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CatalogError
from .record import ColumnType


@dataclass
class Column:
    name: str
    col_type: ColumnType
    nullable: bool = True

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.col_type.value,
            "nullable": self.nullable,
        }

    @staticmethod
    def from_json(data: dict) -> "Column":
        return Column(
            name=data["name"],
            col_type=ColumnType(data["type"]),
            nullable=data.get("nullable", True),
        )


@dataclass
class IndexInfo:
    name: str
    column: str
    root_page: int

    def to_json(self) -> dict:
        return {"name": self.name, "column": self.column,
                "root_page": self.root_page}

    @staticmethod
    def from_json(data: dict) -> "IndexInfo":
        return IndexInfo(data["name"], data["column"], data["root_page"])


@dataclass
class TableInfo:
    name: str
    columns: List[Column]
    first_page: int
    indexes: List[IndexInfo] = field(default_factory=list)

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column_types(self) -> List[ColumnType]:
        return [column.col_type for column in self.columns]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "columns": [c.to_json() for c in self.columns],
            "first_page": self.first_page,
            "indexes": [i.to_json() for i in self.indexes],
        }

    @staticmethod
    def from_json(data: dict) -> "TableInfo":
        return TableInfo(
            name=data["name"],
            columns=[Column.from_json(c) for c in data["columns"]],
            first_page=data["first_page"],
            indexes=[IndexInfo.from_json(i) for i in data.get("indexes", [])],
        )


@dataclass
class UDFInfo:
    """A registered UDF as the catalog sees it.

    ``payload`` is language-specific: JagScript source or classfile
    bytes for sandboxed UDFs; a ``module:function`` dotted path for
    native ones (native UDF code lives in the server's own import path,
    exactly like a C++ UDF compiled into PREDATOR).
    """

    name: str
    language: str          # "native" | "jaguar"
    design: str            # repro.core.designs.Design value
    entry: str             # function name within the payload
    payload: bytes
    param_types: List[str]
    ret_type: str
    callbacks: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "language": self.language,
            "design": self.design,
            "entry": self.entry,
            "payload": base64.b64encode(self.payload).decode("ascii"),
            "param_types": self.param_types,
            "ret_type": self.ret_type,
            "callbacks": self.callbacks,
        }

    @staticmethod
    def from_json(data: dict) -> "UDFInfo":
        return UDFInfo(
            name=data["name"],
            language=data["language"],
            design=data["design"],
            entry=data["entry"],
            payload=base64.b64decode(data["payload"]),
            param_types=list(data["param_types"]),
            ret_type=data["ret_type"],
            callbacks=list(data.get("callbacks", [])),
        )


class Catalog:
    """In-memory catalog with explicit save/load.

    With ``deferred=True`` (set by a WAL-backed database) the eager
    ``save()`` calls sprinkled through DDL paths stop writing the
    sidecar file directly — each becomes a notification (``on_change``)
    so the current statement is marked catalog-dirty; the statement's
    commit then logs the full serialized catalog in the WAL, and the
    sidecar file itself is rewritten only at checkpoints
    (``save(force=True)``).  Crash recovery restores it from the last
    committed CATALOG record, so an in-place sidecar write can never
    expose uncommitted DDL.
    """

    def __init__(self, path: Optional[str] = None, deferred: bool = False,
                 on_change=None):
        self.path = path
        self.deferred = deferred
        self.on_change = on_change
        self.tables: Dict[str, TableInfo] = {}
        self.udfs: Dict[str, UDFInfo] = {}
        self._lock = threading.RLock()
        #: Schema epoch: bumped on every DDL / UDF registration change.
        #: The shared plan cache keys on it, so any statement planned
        #: against an older schema misses instead of serving stale
        #: table/index/UDF resolutions.
        self.epoch = 0
        if path is not None and os.path.exists(path):
            self._load()

    def bump_epoch(self) -> None:
        with self._lock:
            self.epoch += 1

    # -- tables ------------------------------------------------------------

    def add_table(self, table: TableInfo) -> None:
        with self._lock:
            key = table.name.lower()
            if key in self.tables:
                raise CatalogError(f"table {table.name!r} already exists")
            self.tables[key] = table
            self.epoch += 1
            self.save()

    def get_table(self, name: str) -> TableInfo:
        with self._lock:
            try:
                return self.tables[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> TableInfo:
        with self._lock:
            try:
                table = self.tables.pop(name.lower())
            except KeyError:
                raise CatalogError(f"unknown table {name!r}") from None
            self.epoch += 1
            self.save()
            return table

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self.tables

    # -- UDFs ------------------------------------------------------------------

    def add_udf(self, udf: UDFInfo) -> None:
        with self._lock:
            key = udf.name.lower()
            if key in self.udfs:
                raise CatalogError(f"function {udf.name!r} already exists")
            self.udfs[key] = udf
            self.epoch += 1
            self.save()

    def get_udf(self, name: str) -> UDFInfo:
        with self._lock:
            try:
                return self.udfs[name.lower()]
            except KeyError:
                raise CatalogError(f"unknown function {name!r}") from None

    def drop_udf(self, name: str) -> None:
        with self._lock:
            if self.udfs.pop(name.lower(), None) is None:
                raise CatalogError(f"unknown function {name!r}")
            self.epoch += 1
            self.save()

    def has_udf(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self.udfs

    # -- persistence ---------------------------------------------------------------

    def serialize(self) -> bytes:
        """The catalog's persistent form, for WAL CATALOG records."""
        with self._lock:
            blob = {
                "tables": [t.to_json() for t in self.tables.values()],
                "udfs": [u.to_json() for u in self.udfs.values()],
            }
            return json.dumps(blob, indent=1).encode("utf-8")

    def save(self, force: bool = False) -> None:
        if self.path is None:
            return
        if self.deferred and not force:
            if self.on_change is not None:
                self.on_change()
            return
        with self._lock:
            data = self.serialize()
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, self.path)

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            blob = json.load(handle)
        for table_json in blob.get("tables", []):
            table = TableInfo.from_json(table_json)
            self.tables[table.name.lower()] = table
        for udf_json in blob.get("udfs", []):
            udf = UDFInfo.from_json(udf_json)
            self.udfs[udf.name.lower()] = udf
