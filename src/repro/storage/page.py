"""Slotted pages.

The classic layout: a small header, a slot directory growing forward,
and record bytes growing backward from the end of the page.  Deleting a
record tombstones its slot (so RIDs stay stable) and the space is
reclaimed by :meth:`SlottedPage.compact` when an insert would otherwise
fail on a fragmented page.

Layout::

    [next_page u32][nslots u16][free_end u16]   header (8 bytes)
    [offset u16, length u16] * nslots           slot directory
    ... free space ...
    record bytes (allocated high-to-low)

``offset == 0`` marks a tombstone (no live record starts inside the
header, so 0 is never a valid offset).

Note there is deliberately **no on-page LSN field**: the write-ahead log
(:mod:`repro.storage.wal`) logs *full page images*, so redo never needs
to compare a page's progress against a log record — replaying a
committed prefix overwrites pages wholesale and is idempotent.  The
"page LSN" the WAL rule needs (no dirty page reaches the data file
before its image is durable in the log) is therefore *frame* metadata,
tracked per buffer-pool frame (``rec_lsn`` in
:class:`~repro.storage.buffer.BufferPool`), and the seed's on-page
layout is preserved bit for bit.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from ..errors import PageError
from .disk import NO_PAGE

HEADER_SIZE = 8
SLOT_SIZE = 4
_HEADER = struct.Struct("<IHH")
_SLOT = struct.Struct("<HH")


class SlottedPage:
    """A mutable view over one page's bytes.

    The page object wraps (and mutates) a ``bytearray`` owned by a
    buffer-pool frame, so changes are visible to the pool immediately;
    callers still must mark the frame dirty.
    """

    def __init__(self, data: bytearray):
        if not isinstance(data, bytearray):
            raise PageError("SlottedPage needs a mutable bytearray")
        self.data = data
        self.page_size = len(data)

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialize a fresh page in-place."""
        page = cls(data)
        _HEADER.pack_into(data, 0, NO_PAGE, 0, len(data))
        return page

    # -- header fields ------------------------------------------------------

    @property
    def next_page(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @next_page.setter
    def next_page(self, page_id: int) -> None:
        struct.pack_into("<I", self.data, 0, page_id)

    @property
    def num_slots(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_num_slots(self, n: int) -> None:
        struct.pack_into("<H", self.data, 4, n)

    @property
    def _free_end(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[2]

    def _set_free_end(self, offset: int) -> None:
        struct.pack_into("<H", self.data, 6, offset)

    # -- slots ---------------------------------------------------------------

    def _slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.num_slots:
            raise PageError(f"slot {slot} out of range [0, {self.num_slots})")
        return _SLOT.unpack_from(self.data, HEADER_SIZE + slot * SLOT_SIZE)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, HEADER_SIZE + slot * SLOT_SIZE, offset, length)

    @property
    def free_space(self) -> int:
        """Bytes available for a new record *including* its slot entry."""
        directory_end = HEADER_SIZE + self.num_slots * SLOT_SIZE
        return self._free_end - directory_end

    def _find_tombstone(self) -> Optional[int]:
        for slot in range(self.num_slots):
            offset, __ = self._slot(slot)
            if offset == 0:
                return slot
        return None

    # -- record operations ---------------------------------------------------------

    def insert(self, record: bytes) -> Optional[int]:
        """Insert a record; returns its slot, or None if it cannot fit.

        Tries compaction before giving up, so fragmentation from deletes
        does not permanently waste the page.
        """
        if len(record) > self.page_size - HEADER_SIZE - SLOT_SIZE:
            raise PageError(
                f"record of {len(record)} bytes cannot fit in any page"
            )
        reuse = self._find_tombstone()
        needed = len(record) + (0 if reuse is not None else SLOT_SIZE)
        if self.free_space < needed:
            self.compact()
            if self.free_space < needed:
                return None
        offset = self._free_end - len(record)
        self.data[offset:offset + len(record)] = record
        self._set_free_end(offset)
        if reuse is not None:
            slot = reuse
        else:
            slot = self.num_slots
            self._set_num_slots(slot + 1)
        self._set_slot(slot, offset, len(record))
        return slot

    def get(self, slot: int) -> bytes:
        offset, length = self._slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        offset, __ = self._slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is already deleted")
        self._set_slot(slot, 0, 0)

    def update(self, slot: int, record: bytes) -> bool:
        """Replace a record in place; False if the new bytes do not fit.

        A shrinking update always succeeds; a growing one succeeds when
        the page (possibly after compaction) has room.  RIDs are stable
        either way.
        """
        offset, length = self._slot(slot)
        if offset == 0:
            raise PageError(f"slot {slot} is deleted")
        if len(record) <= length:
            new_offset = offset + (length - len(record))
            self.data[new_offset:new_offset + len(record)] = record
            self._set_slot(slot, new_offset, len(record))
            return True
        # Grow: tombstone temporarily, try to place the longer record.
        self._set_slot(slot, 0, 0)
        if self.free_space < len(record):
            self.compact()
        if self.free_space < len(record):
            self._set_slot(slot, offset, length)  # restore
            return False
        new_offset = self._free_end - len(record)
        self.data[new_offset:new_offset + len(record)] = record
        self._set_free_end(new_offset)
        self._set_slot(slot, new_offset, len(record))
        return True

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, record) for every live record."""
        for slot in range(self.num_slots):
            offset, length = self._slot(slot)
            if offset != 0:
                yield slot, bytes(self.data[offset:offset + length])

    def compact(self) -> None:
        """Slide live records to the end of the page, squeezing out the
        holes left by deletes and shrinking updates."""
        live = []
        for slot in range(self.num_slots):
            offset, length = self._slot(slot)
            if offset != 0:
                live.append((slot, bytes(self.data[offset:offset + length])))
        end = self.page_size
        for slot, record in live:
            end -= len(record)
            self.data[end:end + len(record)] = record
            self._set_slot(slot, end, len(record))
        self._set_free_end(end)
