"""UDF definitions, signatures, and the registry.

A :class:`UDFDefinition` is everything the server needs to run a UDF:
name, typed signature, language + design (Table 1 coordinates), the
payload (JagScript source / classfile bytes for sandboxed UDFs, a
``module:function`` path for native ones), the callback permissions it
was granted, and optimizer cost hints.

The :class:`UDFRegistry` hands out *executors* (see the per-design
modules).  Executor lifetime follows the paper: in-process executors are
created once per registration and shared; isolated executors are created
once per query ("these executors ... are created once per query, not
once per function invocation") and torn down when the query ends.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import UDFRegistrationError
from ..vm.values import VMType
from .designs import Design

#: SQL-facing type names for UDF parameters/results.  ``handle`` is an
#: integer token for a server-side large object, enabling the callback
#: access pattern (Section 5.5) instead of by-value argument shipping.
PARAM_TYPE_NAMES = ("int", "float", "bool", "str", "bytes", "farr", "handle")

_VM_TYPES = {
    "int": VMType.INT,
    "float": VMType.FLOAT,
    "bool": VMType.BOOL,
    "str": VMType.STR,
    "bytes": VMType.ARR,
    "farr": VMType.FARR,
    "handle": VMType.INT,
    "void": VMType.VOID,
}


@dataclass(frozen=True)
class UDFSignature:
    """Typed signature in SQL-facing terms."""

    param_types: Tuple[str, ...]
    ret_type: str

    def __post_init__(self) -> None:
        for name in self.param_types:
            if name not in PARAM_TYPE_NAMES:
                raise UDFRegistrationError(f"unknown parameter type {name!r}")
        if self.ret_type not in PARAM_TYPE_NAMES:
            raise UDFRegistrationError(f"unknown return type {self.ret_type!r}")

    def vm_param_types(self) -> Tuple[VMType, ...]:
        return tuple(_VM_TYPES[name] for name in self.param_types)

    def vm_ret_type(self) -> VMType:
        return _VM_TYPES[self.ret_type]


@dataclass(frozen=True)
class CostHints:
    """Optimizer hints (Section 5.6: modelling a UDF by its components).

    ``cost_per_call`` is in abstract units relative to a cheap built-in
    predicate (cost 1.0); ``selectivity`` is the expected pass fraction
    when the UDF is used as a predicate.  ``derived`` marks hints the
    static analyzer estimated from bytecode (registration omitted them)
    as opposed to operator-declared figures; EXPLAIN surfaces the
    distinction.
    """

    cost_per_call: float = 1000.0
    selectivity: float = 0.5
    derived: bool = False

    @property
    def rank(self) -> float:
        """Hellerstein's predicate rank: lower runs earlier."""
        return (self.selectivity - 1.0) / self.cost_per_call


@dataclass
class UDFDefinition:
    """A registered UDF.

    ``cost`` of ``None`` means the registration declared no hints; the
    registry fills it with analyzer-derived estimates for sandboxed
    designs (native code cannot be analyzed and falls back to defaults).
    ``analysis`` holds the entry function's static summary
    (:class:`~repro.analysis.effects.FunctionSummary`) once validated;
    ``certificate`` its resource certificate
    (:class:`~repro.analysis.bounds.ResourceCertificate`), when the
    bounds pass could prove anything; ``inline`` its decompilation
    result (:class:`~repro.analysis.decompile.InlineTemplate` when the
    body lifted to a SQL expression, else an
    :class:`~repro.analysis.decompile.InlineRefusal`); ``flows`` its
    information-flow certificate
    (:class:`~repro.analysis.flows.FlowCertificate`), which gates the
    executors' copy-elision/arena fast paths and the optimizer's
    trap-guard elision.
    """

    name: str
    signature: UDFSignature
    design: Design
    payload: bytes
    entry: str
    callbacks: Tuple[str, ...] = ()
    cost: Optional[CostHints] = None
    fuel: Optional[int] = None
    memory: Optional[int] = None
    analysis: Optional[object] = field(default=None, compare=False)
    certificate: Optional[object] = field(default=None, compare=False)
    inline: Optional[object] = field(default=None, compare=False)
    flows: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise UDFRegistrationError(f"bad UDF name {self.name!r}")
        if not self.entry:
            raise UDFRegistrationError("UDF entry point must be non-empty")

    @property
    def language(self) -> str:
        return self.design.language

    @property
    def cost_hints(self) -> CostHints:
        """Declared or derived hints, defaulting when neither exists."""
        return self.cost if self.cost is not None else CostHints()

    @property
    def is_pure(self) -> bool:
        """Statically proven pure: safe to fold and memoize.

        Only sandboxed UDFs carry a summary; native UDFs are opaque host
        code and are never treated as pure.
        """
        summary = self.analysis
        return bool(summary is not None and getattr(summary, "pure", False))


def resolve_native_payload(payload: bytes) -> Callable:
    """Resolve a native UDF payload ``module:function`` to its callable.

    Native UDFs are host-language code living in the server's import
    path — the analog of C++ UDFs compiled against the server.  The
    server operator controls that path; this is exactly the trust the
    paper assigns to Design 1/2 code.
    """
    text = payload.decode("utf-8")
    module_name, sep, func_name = text.partition(":")
    if not sep or not module_name or not func_name:
        raise UDFRegistrationError(
            f"native payload must be 'module:function', got {text!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise UDFRegistrationError(
            f"cannot import native UDF module {module_name!r}: {exc}"
        ) from None
    func = getattr(module, func_name, None)
    if not callable(func):
        raise UDFRegistrationError(
            f"{module_name}.{func_name} is not a callable"
        )
    return func


def _admit_inline(definition: UDFDefinition, inline: Optional[object]):
    """Vet the decompiler's template against the SQL-facing signature.

    The decompiler reasons in VM types; registration adds the SQL view.
    ``handle`` parameters reach the VM as plain ints, but the call path
    *mints* each handle against the query's callback binding — a side
    effect inlining would skip — so handle-taking templates downgrade to
    a refusal.  Native designs (no probe result) are opaque host code.
    """
    from ..analysis.decompile import (
        REASON_IMPURE,
        REASON_UNSUPPORTED,
        InlineRefusal,
        InlineTemplate,
    )

    if inline is None:
        return InlineRefusal(
            definition.name, REASON_IMPURE, "opaque native host code"
        )
    if (isinstance(inline, InlineTemplate)
            and "handle" in definition.signature.param_types):
        return InlineRefusal(
            definition.name, REASON_UNSUPPORTED,
            "handle parameter (handle minting is a call-path effect)",
        )
    return inline


class UDFRegistry:
    """Name -> definition map with executor construction.

    The registry is wired to a server environment (VM instance, callback
    broker, LOB manager) by the owning :class:`~repro.database.Database`;
    the per-design executor modules pull what they need from it.
    """

    def __init__(self, environment: "ServerEnvironment"):
        self.environment = environment
        self._definitions: Dict[str, UDFDefinition] = {}
        self._shared_executors: Dict[str, object] = {}

    def register(self, definition: UDFDefinition) -> None:
        key = definition.name.lower()
        if key in self._definitions:
            raise UDFRegistrationError(
                f"UDF {definition.name!r} is already registered"
            )
        # Validate eagerly: a bad payload should fail at CREATE FUNCTION
        # time, not mid-query.  For sandboxed designs validation also
        # returns the entry point's static effect summary, from which
        # cost hints are derived when the registration declared none.
        from .factory import validate_definition

        probe = validate_definition(definition, self.environment)
        summary, certificate, inline, flows = (
            probe if probe is not None else (None, None, None, None)
        )
        definition.analysis = summary
        definition.certificate = certificate
        definition.inline = _admit_inline(definition, inline)
        definition.flows = flows
        if definition.cost is None and summary is not None:
            from ..analysis.costs import derive_cost_hints

            definition.cost = derive_cost_hints(summary, certificate)
        self._definitions[key] = definition

    def unregister(self, name: str) -> None:
        key = name.lower()
        self._definitions.pop(key, None)
        executor = self._shared_executors.pop(key, None)
        if executor is not None:
            executor.close()
        self.environment.vm.unload_udf(key)

    def get(self, name: str) -> UDFDefinition:
        try:
            return self._definitions[name.lower()]
        except KeyError:
            raise UDFRegistrationError(f"unknown UDF {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._definitions

    def names(self) -> List[str]:
        return sorted(d.name for d in self._definitions.values())

    def executor_for_query(self, name: str, private: bool = False):
        """An executor for one query's worth of invocations.

        In-process designs share one executor per registration (created
        lazily); isolated designs get a fresh remote process per query,
        as in the paper's implementation.

        ``private=True`` gives even in-process designs a fresh executor
        object: the shared ones carry per-query mutable state (context,
        owner thread, profile handle), so statements running
        *concurrently* — the async server's snapshot reads — must not
        share them.  Construction is cheap (the VM's loaded program is
        reused), and releasing is just ``end_query`` — callers must NOT
        ``close()`` a private in-process executor, since sandbox close
        unloads the UDF from the shared VM.
        """
        definition = self.get(name)
        from .factory import make_executor

        if definition.design.is_isolated or private:
            return make_executor(definition, self.environment)
        key = definition.name.lower()
        executor = self._shared_executors.get(key)
        if executor is None:
            executor = make_executor(definition, self.environment)
            self._shared_executors[key] = executor
        return executor

    def close(self) -> None:
        for executor in self._shared_executors.values():
            executor.close()
        self._shared_executors.clear()


@dataclass
class ServerEnvironment:
    """What executors may touch in the server (dependency injection)."""

    vm: "object"                 # repro.vm.machine.JaguarVM
    broker: "object"             # repro.core.callbacks.CallbackBroker
    lobs: Optional[object] = None  # repro.storage.lob.LOBManager
    #: repro.vm.threadgroups.ThreadGroupRegistry — sandbox executors
    #: adopt their per-query accounts into the UDF's group so a DBA can
    #: revoke a runaway UDF mid-query (Section 6.1's thread groups).
    thread_groups: Optional[object] = None
    #: Executor batch size (rows per operator batch / ``invoke_batch``
    #: call).  Isolated executors also use it to pre-size their shared
    #: memory buffer for one batch per round trip.
    batch_size: int = 64
    #: Worker fan-out for UDF execution.  Isolated executors spawn this
    #: many worker processes per query (a :class:`WorkerPool` shards
    #: ``invoke_batch`` across them); the planner inserts Exchange
    #: operators at the same width.  1 (the default) reproduces exact
    #: serial semantics — one worker, no Exchange, seed-identical plans.
    parallelism: int = 1
    #: Tiered execution (``Database(tiering=True)``): hot sandboxed UDFs
    #: are promoted to type-specialized whole-batch kernels once their
    #: observed call count crosses ``tier1_threshold``.  Off by default:
    #: every executor takes its tier-0 (seed) code paths untouched.
    tiering: bool = False
    tier1_threshold: int = 128
