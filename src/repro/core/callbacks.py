"""UDF -> server callbacks (Section 4 of the paper).

"Some UDFs may require additional communication with the database server.
For example, a UDF that extracts pixel (i, j) of an image may be given a
*handle* to the image, rather than the entire image.  The UDF will then
need to ask the server for the appropriate data ... We call such requests
'callbacks'."

A :class:`CallbackBroker` is the server-side registry of callback
endpoints.  Each endpoint has a VM-typed signature (so the verifier can
link CALLBACK instructions eagerly) and a handler.  Handlers frequently
need per-query state — e.g. which large objects the current query's
handles refer to — so invocation goes through a :class:`CallbackBinding`
that pairs the broker with a handle table.

The paper's benchmark callback transfers no data ("No data is actually
transferred during the callback"); that is ``cb_noop``.  The Clip()/
Lookup() style of partial object access is ``cb_lob_read`` /
``cb_lob_length``, which the image example uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import CallbackError
from ..vm.values import VMType

Signature = Tuple[Tuple[VMType, ...], VMType]

I = VMType.INT
A = VMType.ARR
VOID = VMType.VOID

#: Signatures of the callbacks every server deployment exposes.  UDFs
#: still need an explicit per-UDF *permission* for each one; presence in
#: this table only makes the name linkable.
_STANDARD_SIGNATURES: Dict[str, Signature] = {
    # The paper's benchmark callback: crosses the boundary, moves no data.
    "cb_noop": ((), I),
    # Partial reads of a large object through a handle (Clip()/Lookup()).
    "cb_lob_length": ((I,), I),
    "cb_lob_read": ((I, I, I), A),
    # Diagnostic logging: a UDF may record an integer status code in the
    # server log.  The code leaves the sandbox, which makes this an
    # *egress sink*: the flow certifier must prove no tuple-derived
    # value can reach it (see SINK_CALLBACKS).
    "cb_log": ((I,), I),
}

#: Callbacks whose arguments leave the database's confinement boundary
#: (logs, traces, external channels).  The information-flow pass refuses
#: at load any UDF whose bytecode can move tuple-derived data into one
#: of these, with a ``static:flows`` audit entry.
SINK_CALLBACKS = frozenset({"cb_log"})

#: Callbacks that only *read* server state and are safe to invoke from
#: concurrent Exchange workers.  A UDF whose effects are limited to
#: these is parallelism-safe even though it is not pure.
READ_ONLY_CALLBACKS = frozenset({"cb_noop", "cb_lob_length", "cb_lob_read"})


def standard_callback_signatures() -> Dict[str, Signature]:
    """A copy of the standard signature table (safe to extend)."""
    return dict(_STANDARD_SIGNATURES)


def standard_sink_callbacks() -> frozenset:
    """The deployment's declared egress-sink callbacks."""
    return SINK_CALLBACKS


class CallbackBroker:
    """Server-side registry of callback endpoints.

    Handlers registered here take ``(binding, *vm_args)``: the binding
    carries per-query state (the handle table), the remaining arguments
    are the VM values the UDF passed.
    """

    def __init__(self) -> None:
        self._signatures: Dict[str, Signature] = {}
        self._handlers: Dict[str, Callable] = {}
        for name, handler in _standard_handlers().items():
            self.register(name, _STANDARD_SIGNATURES[name], handler)

    def register(
        self, name: str, signature: Signature, handler: Callable
    ) -> None:
        if name in self._signatures:
            raise CallbackError(f"callback {name!r} is already registered")
        self._signatures[name] = signature
        self._handlers[name] = handler

    def signatures(self) -> Dict[str, Signature]:
        return dict(self._signatures)

    def handler(self, name: str) -> Callable:
        try:
            return self._handlers[name]
        except KeyError:
            raise CallbackError(f"unknown callback {name!r}") from None

    def bind(self, handles: Optional[Dict[int, object]] = None) -> "CallbackBinding":
        """Create a per-query binding with its own handle table."""
        return CallbackBinding(self, handles or {})


class CallbackBinding:
    """Per-query callback state: a broker plus a handle table.

    ``as_handlers`` adapts the binding to the plain ``name -> callable``
    dict the VM execution context consumes.
    """

    def __init__(self, broker: CallbackBroker, handles: Dict[int, object]):
        self.broker = broker
        self.handles = handles
        #: Counts per callback name; lets experiments confirm how often
        #: the boundary was crossed.
        self.invocations: Dict[str, int] = {}

    def add_handle(self, handle: int, target: object) -> None:
        self.handles[handle] = target

    def resolve_handle(self, handle: int) -> object:
        try:
            return self.handles[handle]
        except KeyError:
            raise CallbackError(f"unknown object handle {handle}") from None

    def invoke(self, name: str, *args):
        handler = self.broker.handler(name)
        self.invocations[name] = self.invocations.get(name, 0) + 1
        return handler(self, *args)

    def as_handlers(self) -> Dict[str, Callable]:
        def make(name: str) -> Callable:
            def call(*args):
                return self.invoke(name, *args)

            return call

        return {name: make(name) for name in self.broker.signatures()}


# ---------------------------------------------------------------------------
# Standard handlers
# ---------------------------------------------------------------------------

def _cb_noop(binding: CallbackBinding) -> int:
    return 0


def _cb_log(binding: CallbackBinding, code: int) -> int:
    # The log lives on the binding so tests/examples can inspect what a
    # UDF tried to emit; a real deployment would append to the server
    # log, i.e. outside the confinement boundary.
    log = getattr(binding, "log_records", None)
    if log is None:
        log = binding.log_records = []
    log.append(code)
    return 0


def _cb_lob_length(binding: CallbackBinding, handle: int) -> int:
    target = binding.resolve_handle(handle)
    return _lob_length(target)


def _cb_lob_read(
    binding: CallbackBinding, handle: int, offset: int, length: int
) -> bytearray:
    target = binding.resolve_handle(handle)
    if length < 0 or offset < 0:
        raise CallbackError("negative offset/length in cb_lob_read")
    return _lob_read(target, offset, length)


def _lob_length(target: object) -> int:
    if isinstance(target, (bytes, bytearray, memoryview)):
        return len(target)
    read_range = getattr(target, "length", None)
    if callable(read_range):
        return target.length()
    raise CallbackError(f"handle target {type(target).__name__} has no length")


def _lob_read(target: object, offset: int, length: int) -> bytearray:
    if isinstance(target, (bytes, bytearray, memoryview)):
        end = min(offset + length, len(target))
        return bytearray(target[offset:end])
    read_range = getattr(target, "read_range", None)
    if callable(read_range):
        return bytearray(target.read_range(offset, length))
    raise CallbackError(
        f"handle target {type(target).__name__} is not readable"
    )


def _standard_handlers() -> Dict[str, Callable]:
    return {
        "cb_noop": _cb_noop,
        "cb_lob_length": _cb_lob_length,
        "cb_lob_read": _cb_lob_read,
        "cb_log": _cb_log,
    }
