"""Per-design UDF cost model (Section 5.6).

"In fact, our experiments can help model the behavior of any UDF by
splitting the work of the UDF into different components."  This module
makes that sentence executable: a UDF invocation under design *D* costs

    T(D) = c_invoke
         + c_indep   * NumDataIndepComps
         + c_dep     * NumDataDepComps * bytes
         + c_callback * NumCallbacks
         + c_data    * bytes                      (argument transfer)

The coefficients are fitted by least squares from calibration samples
(the same measurements Figures 4-8 produce).  The fitted model feeds two
consumers: the optimizer's expensive-predicate ranking, and the
"which design should this UDF use?" advisor in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .designs import Design

#: One calibration observation:
#: (bytes, num_indep, num_dep, num_callbacks, seconds_per_invocation)
Sample = Tuple[int, int, int, int, float]

_COEFFICIENTS = ("invoke", "indep", "dep_byte", "callback", "data_byte")


@dataclass(frozen=True)
class CostModel:
    """Fitted per-invocation cost model for one design."""

    design: Design
    invoke: float
    indep: float
    dep_byte: float
    callback: float
    data_byte: float

    def predict(
        self, nbytes: int, num_indep: int, num_dep: int, num_callbacks: int
    ) -> float:
        """Predicted seconds for one invocation."""
        return (
            self.invoke
            + self.indep * num_indep
            + self.dep_byte * num_dep * nbytes
            + self.callback * num_callbacks
            + self.data_byte * nbytes
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "invoke": self.invoke,
            "indep": self.indep,
            "dep_byte": self.dep_byte,
            "callback": self.callback,
            "data_byte": self.data_byte,
        }


def fit_cost_model(design: Design, samples: Sequence[Sample]) -> CostModel:
    """Least-squares fit of the five coefficients from samples.

    Uses numpy when available; falls back to a tiny normal-equations
    solver otherwise so the core library carries no hard dependency.
    Coefficients are clamped at zero (a negative cost is noise).
    """
    if len(samples) < len(_COEFFICIENTS):
        raise ValueError(
            f"need at least {len(_COEFFICIENTS)} samples, got {len(samples)}"
        )
    rows = [
        [1.0, ni, nd * nb, nc, float(nb)]
        for nb, ni, nd, nc, __ in samples
    ]
    times = [t for *_rest, t in samples]
    coefficients = _least_squares(rows, times)
    coefficients = [max(c, 0.0) for c in coefficients]
    return CostModel(design, *coefficients)


def _least_squares(rows: List[List[float]], times: List[float]) -> List[float]:
    try:
        import numpy
    except ImportError:
        return _normal_equations(rows, times)
    solution, *__ = numpy.linalg.lstsq(
        numpy.asarray(rows), numpy.asarray(times), rcond=None
    )
    return [float(x) for x in solution]


def _normal_equations(rows: List[List[float]], times: List[float]) -> List[float]:
    """Solve (AᵀA)x = Aᵀb by Gaussian elimination with a ridge term."""
    n = len(rows[0])
    ata = [[0.0] * n for __ in range(n)]
    atb = [0.0] * n
    for row, t in zip(rows, times):
        for i in range(n):
            atb[i] += row[i] * t
            for j in range(n):
                ata[i][j] += row[i] * row[j]
    for i in range(n):
        ata[i][i] += 1e-12  # ridge: keep the system nonsingular
    # Gaussian elimination with partial pivoting.
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(ata[r][col]))
        ata[col], ata[pivot] = ata[pivot], ata[col]
        atb[col], atb[pivot] = atb[pivot], atb[col]
        scale = ata[col][col]
        for row in range(col + 1, n):
            factor = ata[row][col] / scale
            for k in range(col, n):
                ata[row][k] -= factor * ata[col][k]
            atb[row] -= factor * atb[col]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = atb[row]
        for k in range(row + 1, n):
            acc -= ata[row][k] * solution[k]
        solution[row] = acc / ata[row][row]
    return solution


def recommend_design(
    models: Dict[Design, CostModel],
    nbytes: int,
    num_indep: int,
    num_dep: int,
    num_callbacks: int,
    require_safety: bool = True,
) -> Tuple[Design, float]:
    """Cheapest design for the given workload shape.

    With ``require_safety`` (the web-deployment scenario of the paper's
    introduction) Design 1 and the SFI variant are excluded: they do not
    contain crashes.
    """
    best: Tuple[Design, float] = (None, float("inf"))  # type: ignore
    for design, model in models.items():
        if require_safety and not design.is_isolated and not design.is_sandboxed:
            continue
        cost = model.predict(nbytes, num_indep, num_dep, num_callbacks)
        if cost < best[1]:
            best = (design, cost)
    if best[0] is None:
        raise ValueError("no admissible design in the model set")
    return best
