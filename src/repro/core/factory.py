"""Executor interface and per-design construction.

``make_executor`` is the single switch over Table 1: it maps a
:class:`~repro.core.udf.UDFDefinition` to the executor implementing its
design.  ``validate_definition`` runs the load-time checks (compile /
verify / import) so registration fails fast.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..errors import UDFRegistrationError
from .callbacks import CallbackBinding
from .designs import Design
from .udf import ServerEnvironment, UDFDefinition, resolve_native_payload


class UDFExecutor(abc.ABC):
    """Runs invocations of one UDF for one query at a time.

    Lifecycle::

        executor = registry.executor_for_query(name)
        executor.begin_query(binding)
        for tuple in ...:
            executor.invoke(args)
        executor.end_query()      # isolated designs tear down here

    ``close`` releases everything (shared executors are closed when the
    registry shuts down).
    """

    #: Per-query :class:`~repro.obs.profile.UDFProfile`, attached by the
    #: statement executor's UDF resolver when observability collects and
    #: reset to ``None`` at query teardown.  A class attribute, so the
    #: default (off) costs executors neither per-instance state nor any
    #: hot-path work beyond one ``is None`` test per batch.
    profile = None

    def __init__(self, definition: UDFDefinition, env: ServerEnvironment):
        self.definition = definition
        self.env = env
        self.binding: Optional[CallbackBinding] = None

    @property
    def design(self) -> Design:
        return self.definition.design

    def begin_query(self, binding: Optional[CallbackBinding] = None) -> None:
        self.binding = binding if binding is not None else self.env.broker.bind()

    @abc.abstractmethod
    def invoke(self, args: Sequence[object]) -> object:
        """Run the UDF once.  ``args`` are SQL values."""

    def invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        """Run the UDF once per argument tuple, in order.

        The batch boundary is where each design amortizes its fixed
        per-invocation costs (guard setup, VM entry, shm round-trips);
        this default is the semantic contract the overrides must match —
        one result per argument tuple, same order, first failure
        propagates.
        """
        return [self.invoke(args) for args in args_list]

    def end_query(self) -> None:
        self.binding = None

    def close(self) -> None:
        self.end_query()

    def __enter__(self) -> "UDFExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    definition: UDFDefinition, env: ServerEnvironment
) -> UDFExecutor:
    """Build the executor implementing ``definition.design``."""
    from .integrated import NativeIntegratedExecutor
    from .isolated import RemoteExecutor
    from .sandbox import SandboxExecutor
    from .sfi import SFIExecutor

    design = definition.design
    # Isolated designs get a WorkerPool of ``env.parallelism`` executor
    # processes; everything else runs in-process and parallelizes (when
    # safe) across Exchange threads instead.
    parallelism = getattr(env, "parallelism", 1)
    if design is Design.NATIVE_INTEGRATED:
        return NativeIntegratedExecutor(definition, env)
    if design is Design.NATIVE_SFI:
        return SFIExecutor(definition, env)
    if design is Design.NATIVE_ISOLATED:
        return RemoteExecutor(definition, env, parallelism=parallelism)
    if design is Design.SANDBOX_JIT:
        return SandboxExecutor(definition, env, use_jit=True)
    if design is Design.SANDBOX_INTERP:
        return SandboxExecutor(definition, env, use_jit=False)
    if design is Design.SANDBOX_ISOLATED:
        return RemoteExecutor(definition, env, parallelism=parallelism)
    raise UDFRegistrationError(f"no executor for design {design}")


def validate_definition(
    definition: UDFDefinition, env: ServerEnvironment
) -> Optional[object]:
    """Registration-time checks: fail at CREATE FUNCTION, not mid-query.

    For sandboxed designs, returns a ``(summary, certificate, inline,
    flows)`` tuple — the entry function's static effect summary
    (``repro.analysis.effects.FunctionSummary``), resource certificate
    (``repro.analysis.bounds.ResourceCertificate``), decompilation
    result (``repro.analysis.decompile.InlineTemplate`` or
    ``InlineRefusal``), and flow certificate
    (``repro.analysis.flows.FlowCertificate``); native designs are
    opaque host code and return ``None``.
    """
    if definition.design.is_sandboxed:
        from .sandbox import load_sandbox_payload

        # Decoding + verification + static analysis happens here; a
        # malformed or unsafe classfile never reaches the catalog, and a
        # classfile whose inferred effects exceed its callback grant is
        # rejected by the security manager's load-time pre-check.
        return load_sandbox_payload(definition, env, probe_only=True)
    else:
        func = resolve_native_payload(definition.payload)
        nparams = len(definition.signature.param_types)
        code = getattr(func, "__code__", None)
        if code is not None:
            declared = code.co_argcount
            takes_ctx = declared > 0 and code.co_varnames[0] == "ctx"
            expected = nparams + (1 if takes_ctx else 0)
            if declared != expected:
                raise UDFRegistrationError(
                    f"native UDF {definition.name!r} declares {declared} "
                    f"parameters, signature has {nparams}"
                )
