"""The paper's generic benchmark UDF (Section 5.1), in both languages.

"We used a 'generic' UDF that takes four parameters (ByteArray,
NumDataIndepComps, NumDataDepComps, NumCallbacks) and returns an
integer":

* loop 1 performs ``NumDataIndepComps`` simple integer additions
  (data-independent computation);
* loop 2 iterates over the entire byte array ``NumDataDepComps`` times
  (data-dependent computation — this is where bounds checking bites);
* loop 3 issues ``NumCallbacks`` callbacks that transfer no data
  (``cb_noop``).

The module provides the native (host Python) version — used by Designs
1, 1+SFI, and 2 — and the JagScript source compiled for Designs 3 and 4,
plus a do-nothing variant for the calibration experiments (Figures 4-5),
and helpers that wrap each into a registrable
:class:`~repro.core.udf.UDFDefinition`.
"""

from __future__ import annotations

from typing import Optional

from .designs import Design
from .udf import CostHints, UDFDefinition, UDFSignature

SIGNATURE = UDFSignature(
    param_types=("bytes", "int", "int", "int"), ret_type="int"
)


def generic_native(ctx, data, num_indep, num_dep, num_callbacks):
    """Native (trusted, host-language) version of the generic UDF."""
    s = 0
    for __ in range(num_indep):
        s = s + 1
    for __ in range(num_dep):
        for i in range(len(data)):
            s = s + data[i]
    for __ in range(num_callbacks):
        s = s + ctx.callback("cb_noop")
    return s


def noop_native(data, num_indep, num_dep, num_callbacks):
    """The trivial UDF of the calibration experiments: does no work."""
    return 0


GENERIC_JAGSCRIPT = '''
def generic(data: bytes, num_indep: int, num_dep: int,
            num_callbacks: int) -> int:
    """Sandboxed version of the paper's generic benchmark UDF."""
    s: int = 0
    for j in range(num_indep):
        s = s + 1
    for p in range(num_dep):
        for i in range(len(data)):
            s = s + data[i]
    for c in range(num_callbacks):
        s = s + cb_noop()
    return s
'''

NOOP_JAGSCRIPT = '''
def noop(data: bytes, num_indep: int, num_dep: int,
         num_callbacks: int) -> int:
    return 0
'''


def generic_definition(
    design: Design,
    name: Optional[str] = None,
    fuel: Optional[int] = None,
    memory: Optional[int] = None,
) -> UDFDefinition:
    """The generic UDF registered under ``design``."""
    udf_name = name or f"generic_{design.value}"
    if design.is_sandboxed:
        payload = GENERIC_JAGSCRIPT.encode("utf-8")
        entry = "generic"
    else:
        payload = b"repro.core.generic_udf:generic_native"
        entry = "generic_native"
    return UDFDefinition(
        name=udf_name,
        signature=SIGNATURE,
        design=design,
        payload=payload,
        entry=entry,
        callbacks=("cb_noop",),
        cost=CostHints(cost_per_call=1000.0, selectivity=0.5),
        fuel=fuel,
        memory=memory,
    )


def noop_definition(design: Design, name: Optional[str] = None) -> UDFDefinition:
    """The trivial calibration UDF registered under ``design``."""
    udf_name = name or f"noop_{design.value}"
    if design.is_sandboxed:
        payload = NOOP_JAGSCRIPT.encode("utf-8")
        entry = "noop"
    else:
        payload = b"repro.core.generic_udf:noop_native"
        entry = "noop_native"
    return UDFDefinition(
        name=udf_name,
        signature=SIGNATURE,
        design=design,
        payload=payload,
        entry=entry,
        callbacks=(),
        cost=CostHints(cost_per_call=10.0, selectivity=1.0),
    )


ARITH_SIGNATURE = UDFSignature(param_types=("int",), ret_type="int")


def arith_native(x):
    """Host version of the inlinable arithmetic UDF."""
    return x * 3 + 1


ARITH_JAGSCRIPT = """
def arith(x: int) -> int:
    return x * 3 + 1
"""


def arith_definition(design: Design, name: Optional[str] = None) -> UDFDefinition:
    """A pure, loop-free arithmetic UDF for the inlining experiments.

    Under sandboxed designs the decompiler lifts it into
    ``(x * 3 + 1)``; native designs carry opaque host code and refuse,
    so with ``inlining=True`` only the sandboxed curves collapse onto
    the equivalent SQL expression.
    """
    udf_name = name or f"arith_{design.value}"
    if design.is_sandboxed:
        payload = ARITH_JAGSCRIPT.encode("utf-8")
        entry = "arith"
    else:
        payload = b"repro.core.generic_udf:arith_native"
        entry = "arith_native"
    return UDFDefinition(
        name=udf_name,
        signature=ARITH_SIGNATURE,
        design=design,
        payload=payload,
        entry=entry,
        callbacks=(),
        cost=CostHints(cost_per_call=10.0, selectivity=1.0),
    )
