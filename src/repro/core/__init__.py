"""The paper's contribution: secure and portable UDF extensibility."""
