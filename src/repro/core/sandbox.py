"""Design 3: sandboxed (JaguarVM) UDFs inside the server process ("JNI").

The paper's Section 4.2 implementation, transliterated:

* "a single JVM is created when the database server starts up" — the
  server owns one :class:`~repro.vm.machine.JaguarVM`;
* "each Java UDF is packaged as a method within its own class ... the
  corresponding class is loaded once for the whole query execution" —
  the classfile is loaded (decoded, verified, linked into an isolated
  class loader) at registration, and one execution context is reused
  across a query's invocations;
* "parameters that need to be passed must first be mapped to Java
  objects" — argument marshalling through
  :func:`~repro.vm.values.coerce_argument` copies byte arrays at the
  boundary, the impedance-mismatch cost Figure 5 measures at large
  payloads;
* "callbacks from the Java UDF to the server occur through the 'native
  method' feature" — CALLBACK instructions dispatch through the security
  manager to the broker.

The UDF payload may be JagScript source (compiled here) or classfile
bytes (a client-compiled, migrated UDF); either way the bytes are
verified before the catalog accepts them.
"""

from __future__ import annotations

import threading
from time import perf_counter_ns
from typing import Optional, Sequence

from ..errors import UDFRegistrationError
from ..vm.classfile import MAGIC, ClassFile
from ..vm.compiler import compile_source
from ..vm.machine import LoadedUDF
from ..vm.security import Permissions
from .callbacks import standard_sink_callbacks
from .factory import UDFExecutor
from .udf import ServerEnvironment, UDFDefinition


def compile_udf_source(
    source: str, class_name: str, env: ServerEnvironment
) -> ClassFile:
    """Compile JagScript with the server's callback signatures visible."""
    return compile_source(
        source, class_name, callbacks=env.broker.signatures()
    )


def load_sandbox_payload(
    definition: UDFDefinition,
    env: ServerEnvironment,
    probe_only: bool = False,
):
    """Turn a sandbox payload into a loaded (verified) UDF.

    ``probe_only`` runs the full pipeline and then unloads — used at
    registration time to reject bad payloads without keeping state.  In
    that mode the return value is a ``(summary, certificate, inline,
    flows)`` tuple: the entry function's static effect summary
    (``FunctionSummary``), its resource certificate
    (``ResourceCertificate``), its decompilation result
    (``InlineTemplate`` or ``InlineRefusal``), and its flow certificate
    (``FlowCertificate``), all of which the registry records on the
    definition; otherwise the :class:`LoadedUDF` is returned.
    """
    payload = definition.payload
    class_name = f"udf_{definition.name}"
    if payload[:4] == MAGIC:
        classfile: object = bytes(payload)  # hostile path: decode+verify
    else:
        try:
            source = payload.decode("utf-8")
        except UnicodeDecodeError:
            raise UDFRegistrationError(
                f"UDF {definition.name!r}: payload is neither a classfile "
                f"nor utf-8 source"
            ) from None
        classfile = compile_udf_source(source, class_name, env)

    vm = env.vm
    load_name = definition.name.lower()
    if probe_only:
        load_name = f"__probe_{load_name}"
    # None quotas inherit the VM's QuotaPolicy; explicit registration
    # values derive a per-UDF policy without touching anything shared.
    loaded = vm.load_udf(
        name=load_name,
        classfiles=[classfile],
        permissions=Permissions(
            callbacks=frozenset(definition.callbacks),
            sinks=standard_sink_callbacks(),
        ),
        fuel=definition.fuel,
        memory=definition.memory,
    )
    entry = definition.entry
    func = loaded.main_class.functions.get(entry)
    if func is None:
        vm.unload_udf(load_name)
        raise UDFRegistrationError(
            f"UDF {definition.name!r}: payload defines no function "
            f"{entry!r}"
        )
    want_params = definition.signature.vm_param_types()
    want_ret = definition.signature.vm_ret_type()
    if func.param_types != want_params or func.ret_type is not want_ret:
        vm.unload_udf(load_name)
        raise UDFRegistrationError(
            f"UDF {definition.name!r}: entry signature "
            f"{[t.value for t in func.param_types]} -> "
            f"{func.ret_type.value} does not match declaration "
            f"{list(definition.signature.param_types)} -> "
            f"{definition.signature.ret_type}"
        )
    if probe_only:
        vm.unload_udf(load_name)
        return (
            getattr(func, "summary", None),
            getattr(func, "certificate", None),
            getattr(func, "inline", None),
            getattr(func, "flows", None),
        )
    return loaded


class SandboxExecutor(UDFExecutor):
    """In-process JaguarVM execution (with or without the JIT)."""

    def __init__(
        self,
        definition: UDFDefinition,
        env: ServerEnvironment,
        use_jit: bool = True,
    ):
        super().__init__(definition, env)
        vm = env.vm
        existing = vm.loaded_udfs.get(definition.name.lower())
        self._loaded = existing or load_sandbox_payload(definition, env)
        self._use_jit = use_jit
        self._context = None
        self._reservation = None
        # Tier-1 promotion state (lazy; shared executors accumulate call
        # counts across queries, which is what "hot" means here).
        self._tier = None
        # Exchange threads each get their own execution context (and
        # resource account): contexts are cheap, and sharing one across
        # threads would interleave fuel accounting mid-invocation.
        self._owner_thread: Optional[threading.Thread] = None
        self._tls = threading.local()
        self._extra_contexts: list = []
        self._extra_lock = threading.Lock()

    def _admission_claim(self) -> tuple:
        """Per-invocation worst case to reserve against the group budget.

        The certified constant bound is the tight claim; argument-
        dependent or absent bounds fall back to the full account quota
        (the runtime meter's own cap, so the claim is always sound).
        """
        from ..analysis.bounds import constant_bound

        policy = self._loaded.policy
        fuel_claim, mem_claim = policy.fuel, policy.memory
        entry = self._loaded.main_class.functions.get(self.definition.entry)
        cert = getattr(entry, "certificate", None)
        if cert is not None:
            fuel_const = constant_bound(cert.fuel_bound)
            if fuel_const is not None:
                fuel_claim = min(fuel_claim, fuel_const)
            mem_const = constant_bound(cert.mem_bound)
            if mem_const is not None:
                mem_claim = min(mem_claim, mem_const)
        return fuel_claim, mem_claim

    def begin_query(self, binding=None) -> None:
        super().begin_query(binding)
        # One context (and one resource account) per query: quota limits
        # then bound the query's total sandbox work, and per-invocation
        # setup stays off the per-tuple path, as in the paper.
        self._context = self._loaded.make_context(
            callbacks=self.binding.as_handlers()
        )
        registry = self.env.thread_groups
        if registry is not None:
            # Join the UDF's thread group: if the DBA kills the group,
            # this query's account is revoked and the UDF dies at its
            # next fuel check.
            group = registry.group_for(self.definition.name.lower())
            group.adopt_account(self._context.account)
            # Admission control: reserve the worst case this query's
            # invocations can consume; a claim that cannot fit the
            # group's remaining budget is refused before any tuple runs.
            fuel_claim, mem_claim = self._admission_claim()
            group.reserve(fuel_claim, mem_claim)
            self._reservation = (group, fuel_claim, mem_claim)
        self._owner_thread = threading.current_thread()
        self._tls = threading.local()

    def _thread_context(self):
        """The calling thread's execution context.

        The query's opening thread keeps the context made in
        ``begin_query``; an Exchange worker thread lazily gets its own
        (adopted into the same thread group, with its own labelled
        admission claim), so concurrent batches never share an account.
        Only certified-pure UDFs reach here concurrently — the optimizer
        gates Exchange on purity — so per-thread contexts cannot observe
        each other's effects.
        """
        if threading.current_thread() is self._owner_thread:
            return self._context
        context = getattr(self._tls, "context", None)
        if context is not None:
            return context
        context = self._loaded.make_context(
            callbacks=self.binding.as_handlers()
        )
        reservation = None
        registry = self.env.thread_groups
        if registry is not None:
            group = registry.group_for(self.definition.name.lower())
            group.adopt_account(context.account)
            fuel_claim, mem_claim = self._admission_claim()
            holder = (
                f"{self.definition.name.lower()}/"
                f"{threading.current_thread().name}"
            )
            group.reserve(fuel_claim, mem_claim, holder=holder)
            reservation = (group, fuel_claim, mem_claim, holder)
        with self._extra_lock:
            self._extra_contexts.append(reservation)
        self._tls.context = context
        return context

    def invoke(self, args: Sequence[object]) -> object:
        if self._context is None:
            self.begin_query()
        account = self._context.account
        account.reset()  # the quota is per invocation
        loaded = self._loaded
        saved = loaded.use_jit
        loaded.use_jit = self._use_jit
        prof = self.profile
        if prof is None:
            try:
                return loaded.invoke(
                    self.definition.entry, args, context=self._context
                )
            finally:
                loaded.use_jit = saved
        started = perf_counter_ns()
        try:
            result = loaded.invoke(
                self.definition.entry, args, context=self._context
            )
        except BaseException as exc:
            prof.record_error(exc)
            raise
        finally:
            loaded.use_jit = saved
        prof.record_invocations(1, perf_counter_ns() - started)
        # The account was reset at call entry, so the delta from its
        # limits is exactly this invocation's consumption.
        prof.record_resources(
            account.fuel_limit - account.fuel,
            account.memory_limit - account.memory,
        )
        return result

    def _certified_call_bounds(self) -> tuple:
        """Constant certified per-invocation (fuel, mem) bounds, or Nones."""
        from ..analysis.bounds import constant_bound

        entry = self._loaded.main_class.functions.get(self.definition.entry)
        cert = getattr(entry, "certificate", None)
        if cert is None:
            return None, None
        return (
            constant_bound(cert.fuel_bound),
            constant_bound(cert.mem_bound),
        )

    def invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        """One VM entry per batch instead of per tuple.

        ``make_invoker`` hoists function lookup, verification, and JIT
        compilation out of the loop.  When the certifier proved constant
        per-invocation fuel/heap bounds, the per-call ``account.reset()``
        is elided while the remaining quota still covers the bound: an
        invocation that provably fits what is left cannot fault where a
        fresh account would not have, so the per-invocation quota
        semantics are preserved without touching the account each tuple.

        The flow certificate adds two further fast paths.  When every
        allocation is proven non-escaping (``arena_safe``), the batch
        behaves like one recycled arena: each call's memory charges are
        refunded after it returns (the allocations are garbage by then),
        so an argument-dependent allocator no longer needs a full reset
        per tuple — only the certified fuel bound does.  And proven
        read-only byte-array parameters skip the defensive marshalling
        copy inside ``make_invoker`` (gated on ``definition.flows`` so
        stripping the certificate restores the copying baseline).
        """
        if self._context is None:
            self.begin_query()
        context = self._thread_context()
        account = context.account
        flows = getattr(self.definition, "flows", None)
        invoke_one = self._loaded.make_invoker(
            self.definition.entry,
            context,
            use_jit=self._use_jit,
            elide_copies=flows is not None,
        )
        state = None
        if getattr(self.env, "tiering", False):
            state = self._tier_state()
            state.calls += len(args_list)
            if self._promote(state, context, flows):
                return self._invoke_batch_tier1(
                    args_list, context, invoke_one, state
                )
        prof = self.profile
        if prof is not None:
            return self._invoke_batch_profiled(
                args_list, account, invoke_one, prof, tier_state=state
            )
        fuel_need, mem_need = self._certified_call_bounds()
        arena = flows is not None and flows.arena_safe
        results = []
        mem_limit = account.memory_limit
        if fuel_need is not None and mem_need is None and arena:
            # Per-batch arena: nothing this function allocates survives
            # its return, so the heap charges are handed back after each
            # call and only the fuel bound governs reset elision.  Only
            # worth it when no static memory bound exists — with both
            # bounds certified the branch below is cheaper (no per-call
            # refund).
            account.reset()
            for args in args_list:
                if account.fuel < fuel_need:
                    account.reset()
                results.append(invoke_one(args))
                account.release_memory(mem_limit)
        elif fuel_need is None or mem_need is None:
            for args in args_list:
                account.reset()  # the quota is per invocation
                results.append(invoke_one(args))
        else:
            account.reset()
            for args in args_list:
                if account.fuel < fuel_need or account.memory < mem_need:
                    account.reset()
                results.append(invoke_one(args))
        return results

    def _tier_state(self):
        """The executor's promotion state machine (created on demand)."""
        state = self._tier
        if state is None:
            from ..vm.tier import DEFAULT_PROMOTION_CALLS, TierState

            threshold = getattr(
                self.env, "tier1_threshold", DEFAULT_PROMOTION_CALLS
            )
            state = self._tier = TierState(threshold)
        return state

    def _promote(self, state, context, flows) -> bool:
        """Promote once hot; ``True`` when the next batch runs tier 1."""
        from ..vm.tier import maybe_promote

        already = state.kernel is not None
        promoted = maybe_promote(
            state,
            self._loaded,
            self.definition.entry,
            context,
            use_flows=flows is not None,
        )
        if promoted and not already and self.profile is not None:
            self.profile.record_promotion()
        return promoted

    def _invoke_batch_tier1(self, args_list, context, invoke_one, state):
        """One batch through the compiled kernel, deopt-safe.

        Mid-batch faults fall back to tier 0 inside
        :func:`~repro.vm.tier.run_tiered_batch`; a fault the tier-0
        rerun reproduces propagates from here exactly as the baseline
        batch loop would have raised it.
        """
        from ..vm.tier import run_tiered_batch

        prof = self.profile
        if prof is None:
            results, _deopted = run_tiered_batch(
                state, context, args_list, invoke_one
            )
            return results
        prof.bind_tier(state)
        started = perf_counter_ns()
        try:
            results, deopted = run_tiered_batch(
                state, context, args_list, invoke_one
            )
        except BaseException as exc:
            prof.record_error(exc)
            prof.record_tier_batch(len(args_list), 0, deopted=True)
            raise
        elapsed = perf_counter_ns() - started
        if args_list:
            prof.record_invocations(len(args_list), elapsed)
            prof.record_tier_batch(len(args_list), elapsed, deopted=deopted)
        return results

    def _invoke_batch_profiled(self, args_list, account, invoke_one, prof,
                               tier_state=None):
        """The batch loop with per-call fuel/heap attribution.

        Uses the reset-per-call baseline (eliding resets would fold
        several invocations' consumption into one opaque window); quota
        semantics are identical — elision is only ever an optimization.
        All accumulation is local-variable arithmetic; the profile is
        touched once per batch.
        """
        fuel_limit = account.fuel_limit
        mem_limit = account.memory_limit
        fuel_used = 0
        heap_used = 0
        results = []
        if tier_state is not None:
            prof.bind_tier(tier_state)
        started = perf_counter_ns()
        try:
            for args in args_list:
                account.reset()  # the quota is per invocation
                results.append(invoke_one(args))
                fuel_used += fuel_limit - account.fuel
                heap_used += mem_limit - account.memory
        except BaseException as exc:
            prof.record_error(exc)
            raise
        finally:
            if args_list:
                prof.record_resources(fuel_used, heap_used)
        if args_list:
            elapsed = perf_counter_ns() - started
            prof.record_invocations(len(args_list), elapsed)
            if tier_state is not None:
                prof.record_tier0_batch(len(args_list), elapsed)
        return results

    def end_query(self) -> None:
        super().end_query()
        self._context = None
        self._owner_thread = None
        self._tls = threading.local()
        if self._reservation is not None:
            group, fuel_claim, mem_claim = self._reservation
            self._reservation = None
            group.release(fuel_claim, mem_claim)
        with self._extra_lock:
            extras, self._extra_contexts = self._extra_contexts, []
        for reservation in extras:
            if reservation is not None:
                group, fuel_claim, mem_claim, holder = reservation
                group.release(fuel_claim, mem_claim, holder=holder)

    def close(self) -> None:
        super().close()
        self.env.vm.unload_udf(self.definition.name.lower())

    @property
    def resource_snapshot(self) -> Optional[dict]:
        """Usage of the current query's account (auditing aid)."""
        if self._context is None:
            return None
        return self._context.account.snapshot()
