"""Design 1 variant: native UDFs with SFI-style access checks.

Two threads of the paper meet here:

* Section 4: "No protection mechanism (like software fault isolation)
  was used ... From published research on the subject [WLAG93], we
  expect such a mechanism to add an overhead of approximately 25%."
* Section 5.4: "we tested a second version of the C++ UDF that
  explicitly checks the bounds of every array access.  When compared to
  this version ... JNI performs only 20% worse."

True SFI rewrites machine code; for host-language (Python) UDF code the
honest equivalent is to interpose on the *data* the UDF manipulates:
byte-array arguments are wrapped in :class:`GuardedBytes`, whose every
indexed access performs an explicit bounds check before touching the
underlying buffer.  That reproduces both the cost structure the paper
measures (a per-access tax proportional to data-dependent work) and the
guarantee (no access outside the argument region), while CPU/memory
remain unpoliced — exactly SFI's limitation that Section 2.3 points out.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SFIViolation
from .factory import UDFExecutor
from .integrated import NativeIntegratedExecutor


class GuardedBytes:
    """A byte buffer whose accesses are explicitly range-checked.

    Mirrors the instrumentation SFI would add around loads/stores: each
    ``__getitem__``/``__setitem__`` validates the address first.  Slices
    are validated end-to-end; iteration goes through the checked path.
    """

    __slots__ = ("_data", "_length")

    def __init__(self, data):
        self._data = bytearray(data)
        self._length = len(self._data)

    def __len__(self) -> int:
        return self._length

    def _check(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise SFIViolation(
                f"access at {index} outside region [0, {self._length})"
            )
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                raise SFIViolation("strided access is not permitted")
            return bytes(self._data[start:stop])
        return self._data[self._check(index)]

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            raise SFIViolation("slice stores are not permitted")
        self._data[self._check(index)] = value & 0xFF

    def __iter__(self):
        for index in range(self._length):
            yield self._data[index]

    def tobytes(self) -> bytes:
        return bytes(self._data)


class SFIExecutor(NativeIntegratedExecutor):
    """Native in-process execution with guarded byte-array arguments.

    Overrides the *raw* call paths so the inherited instrumentation (see
    ``NativeIntegratedExecutor.invoke``) measures the full SFI span —
    guard wrapping included, since that per-access tax is exactly the
    overhead the design exists to pay.
    """

    def _raw_invoke(self, args: Sequence[object]) -> object:
        guarded = [
            GuardedBytes(a) if isinstance(a, (bytes, bytearray, memoryview))
            else a
            for a in args
        ]
        return super()._raw_invoke(guarded)

    def _raw_invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        # Wrapping stays per-value (each call gets its own guarded
        # region), but the dispatch overhead is paid once for the batch.
        wrap = GuardedBytes
        guarded_list = [
            [
                wrap(a) if isinstance(a, (bytes, bytearray, memoryview))
                else a
                for a in args
            ]
            for args in args_list
        ]
        return super()._raw_invoke_batch(guarded_list)
