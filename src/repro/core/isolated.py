"""Designs 2 and 4: UDFs in isolated executor processes.

Section 4.1, transliterated:

* "one remote executor process is assigned to each UDF in the query ...
  created once per query (not once per function invocation)" — the
  registry builds a fresh :class:`RemoteExecutor` per query;
* "Communication between the server and the remote executors happens
  through shared memory.  The server copies the function arguments into
  shared memory, and 'sends' a request by releasing a semaphore.  The
  remote executor, which was blocked trying to acquire the semaphore,
  now executes the function and places the results back into shared
  memory.  The hand-off for callback requests and for the final answer
  return also occur through a semaphore in shared memory." — the
  :class:`_ShmChannel` below implements exactly this, with chunking so
  payloads larger than the buffer still flow through it (each chunk is
  one more copy + semaphore hand-off, so the cost grows with data size,
  as the paper expects);
* crashes are contained: if the worker dies, the server raises
  :class:`~repro.errors.UDFCrashed` — naming the worker's exit status —
  and keeps serving.

The executor owns a :class:`WorkerPool` of one or more worker processes
(``env.parallelism`` wide), each with its own private shm buffer and
channel.  ``invoke_batch`` shards a batch across the currently idle
workers and *pipelines* the dispatch: every shard is marshalled and sent
before the first result is awaited, so worker k+1 starts computing while
the server is still feeding (or later draining) worker k.  Results are
reassembled in shard order, which is input order, so parallelism never
reorders a batch.  ``parallelism=1`` degenerates to the exact serial
protocol: one worker, one round trip per batch.

Design 4 (the paper extrapolates it; we build it) runs a JaguarVM
*inside* the worker, so the UDF gets both process isolation and the
sandbox's verification/quotas; its callbacks pay the process-boundary
price, which is what makes Design 4 ≈ Design 2 + Design 3 measurable.
UDFs that declared callbacks keep a pool of one: callback dispatch is
interactive and funnels through the query's single broker binding.

Marshalling uses :mod:`pickle` restricted to primitive SQL values (see
``_dumps``/``_loads``) — the analog of PREDATOR copying raw argument
bytes into the segment.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import signal
import struct
from time import perf_counter_ns
from typing import List, Optional, Sequence, Tuple

from ..errors import CallbackError, UDFCrashed, UDFInvocationError, VMError
from .designs import Design
from .factory import UDFExecutor
from .udf import ServerEnvironment, UDFDefinition, resolve_native_payload

_HEADER = struct.Struct("<BII")  # msg type, total length, chunk length
DEFAULT_BUFFER = 256 * 1024
MAX_BUFFER = 8 * 1024 * 1024
#: Ceiling for *hint-driven* buffer pre-sizing.  The shm buffer is
#: allocated once per worker and retained for the whole query, so a
#: giant batch hint (``db.batch_size = 100_000`` against a ``bytes``
#: parameter) must not pin ``MAX_BUFFER`` per worker for the duration —
#: oversized batches chunk through a capped buffer instead.  Callers
#: passing an explicit ``buffer_size`` still get up to ``MAX_BUFFER``.
RETAINED_BUFFER_CAP = 1 * 1024 * 1024
_POLL_INTERVAL = 0.05
_STARTUP_TIMEOUT = 30.0
#: Minimum rows per shard before ``invoke_batch`` fans out to another
#: worker: splitting a tiny batch buys nothing and pays extra hand-offs.
_MIN_SHARD_ROWS = 8

MSG_READY = 1
MSG_INVOKE = 2
MSG_RESULT = 3
MSG_CALLBACK = 4
MSG_CB_REPLY = 5
MSG_ERROR = 6
MSG_SHUTDOWN = 7
MSG_INVOKE_BATCH = 8
MSG_RESULT_BATCH = 9
#: Batch result carrying a worker tier snapshot: payload is
#: ``(results, tier_info)``.  Workers only emit it when the query runs
#: with tiering enabled, so the seed protocol is byte-identical
#: otherwise.
MSG_RESULT_BATCH2 = 10

#: Marshalled-size guesses per SQL parameter type, used to pre-size the
#: shared buffer so a whole batch usually crosses in one chunk.
_PARAM_SIZE_ESTIMATE = {"bytes": 16384, "str": 256}
_PARAM_SIZE_DEFAULT = 64


def _estimate_buffer_size(definition: UDFDefinition, batch_hint: int) -> int:
    """Size the shm buffer for one batched request/response.

    Chunking still works as the fallback (a 100 KB byte array at batch
    64 will always exceed any sane buffer), but the common case — a
    batch of scalar or small-payload argument tuples — should cross in
    a single chunk, i.e. one copy + one semaphore hand-off.
    """
    per_tuple = _PARAM_SIZE_DEFAULT  # pickle framing per tuple
    for param in definition.signature.param_types:
        per_tuple += _PARAM_SIZE_ESTIMATE.get(param, _PARAM_SIZE_DEFAULT)
    need = per_tuple * max(1, batch_hint) + 4096
    # Cap hint-driven growth: the buffer never shrinks once allocated,
    # so a huge batch hint would otherwise retain MAX_BUFFER per worker
    # for the whole query.  Chunking absorbs the overflow.
    return max(DEFAULT_BUFFER, min(need, RETAINED_BUFFER_CAP))


def _dumps(value: object) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _loads(data: bytes) -> object:
    return pickle.loads(data)


class _ShmChannel:
    """Half-duplex chunked messaging over one shared-memory buffer.

    Four semaphores: data-ready and chunk-ack in each direction.  The
    protocol strictly alternates (request, then response), mirroring the
    paper's hand-off description.
    """

    def __init__(self, buffer, s2w_ready, s2w_ack, w2s_ready, w2s_ack):
        self.buffer = buffer
        self.s2w_ready = s2w_ready
        self.s2w_ack = s2w_ack
        self.w2s_ready = w2s_ready
        self.w2s_ack = w2s_ack
        self.max_chunk = len(buffer) - _HEADER.size
        # Local (per-process) traffic counters; each side counts what it
        # sent/received, so the server's view is the IPC tax it paid.
        self.messages_sent = 0
        self.messages_received = 0
        self.chunks_sent = 0
        self.chunks_received = 0

    # -- direction-agnostic primitives ---------------------------------------

    def _send(self, ready, ack, msg_type: int, payload: bytes,
              death_check=None) -> None:
        total = len(payload)
        offset = 0
        first = True
        while first or offset < total:
            if not first:
                # Receiver consumed the previous chunk.  Watch for peer
                # death here too: a multi-chunk send to a dead worker
                # must raise, not block on an ack that will never come.
                self._acquire(ack, death_check)
            chunk = payload[offset:offset + self.max_chunk]
            _HEADER.pack_into(self.buffer, 0, msg_type, total, len(chunk))
            self.buffer[_HEADER.size:_HEADER.size + len(chunk)] = chunk
            ready.release()
            offset += len(chunk)
            first = False
            self.chunks_sent += 1
        self.messages_sent += 1

    def _recv(self, ready, ack, death_check=None) -> Tuple[int, bytes]:
        self._acquire(ready, death_check)
        msg_type, total, chunk_len = _HEADER.unpack_from(self.buffer, 0)
        data = bytearray(
            self.buffer[_HEADER.size:_HEADER.size + chunk_len]
        )
        self.chunks_received += 1
        while len(data) < total:
            ack.release()
            self._acquire(ready, death_check)
            __, __, chunk_len = _HEADER.unpack_from(self.buffer, 0)
            data += self.buffer[_HEADER.size:_HEADER.size + chunk_len]
            self.chunks_received += 1
        self.messages_received += 1
        return msg_type, bytes(data)

    def stats(self) -> dict:
        return {
            "buffer_size": len(self.buffer),
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "chunks_sent": self.chunks_sent,
            "chunks_received": self.chunks_received,
        }

    @staticmethod
    def _acquire(semaphore, death_check) -> None:
        """Block on ``semaphore``; poll ``death_check`` while waiting.

        ``death_check`` (when given) returns ``None`` while the peer is
        alive, else a human-readable status — the dead worker's exit
        code or terminating signal — which the raised
        :class:`UDFCrashed` surfaces instead of a generic liveness
        failure.
        """
        if death_check is None:
            semaphore.acquire()
            return
        while not semaphore.acquire(timeout=_POLL_INTERVAL):
            status = death_check()
            if status is not None:
                raise UDFCrashed(
                    f"remote UDF executor process died ({status}); "
                    f"the server survives"
                )

    # -- server side --------------------------------------------------------------

    def server_send(self, msg_type: int, payload: bytes,
                    death_check=None) -> None:
        self._send(self.s2w_ready, self.s2w_ack, msg_type, payload,
                   death_check)

    def server_recv(self, death_check) -> Tuple[int, bytes]:
        return self._recv(self.w2s_ready, self.w2s_ack, death_check)

    # -- worker side ----------------------------------------------------------------

    def worker_send(self, msg_type: int, payload: bytes) -> None:
        self._send(self.w2s_ready, self.w2s_ack, msg_type, payload)

    def worker_recv(self) -> Tuple[int, bytes]:
        return self._recv(self.s2w_ready, self.s2w_ack)


class _Worker:
    """One executor process plus its private shm buffer and channel."""

    def __init__(self, mp_ctx, definition: UDFDefinition,
                 buffer_size: int, payload_blob: bytes, index: int):
        self.index = index
        self.array = mp_ctx.Array("B", buffer_size, lock=False)
        self.channel = _ShmChannel(
            memoryview(self.array).cast("B"),
            mp_ctx.Semaphore(0), mp_ctx.Semaphore(0),
            mp_ctx.Semaphore(0), mp_ctx.Semaphore(0),
        )
        self.process = mp_ctx.Process(
            target=_worker_main,
            args=(
                self.array,
                self.channel.s2w_ready, self.channel.s2w_ack,
                self.channel.w2s_ready, self.channel.w2s_ack,
                payload_blob,
            ),
            daemon=True,
            name=f"udf-executor-{definition.name}-{index}",
        )
        self.process.start()

    def death(self) -> Optional[str]:
        """``None`` while alive, else how the process ended."""
        process = self.process
        if process is None:
            return "already closed"
        if process.is_alive():
            return None
        code = process.exitcode
        if code is None:
            return "unknown exit status"
        if code < 0:
            try:
                return f"killed by {signal.Signals(-code).name}"
            except ValueError:
                return f"killed by signal {-code}"
        return f"exit code {code}"

    def send(self, msg_type: int, payload: bytes) -> None:
        try:
            self.channel.server_send(msg_type, payload, self.death)
        except UDFCrashed as exc:
            if exc.worker_index is None:
                exc.worker_index = self.index
            raise

    def recv(self) -> Tuple[int, bytes]:
        try:
            return self.channel.server_recv(self.death)
        except UDFCrashed as exc:
            if exc.worker_index is None:
                exc.worker_index = self.index
            raise

    def close(self) -> None:
        process = self.process
        if process is None:
            return
        self.process = None
        try:
            if process.is_alive():
                self.channel.server_send(MSG_SHUTDOWN, b"")
                process.join(timeout=1.0)
        except Exception:
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)


class WorkerPool:
    """N worker processes for one UDF, each with its own channel.

    All processes are forked first so their startup (imports, VM
    construction, classfile verification for Design 4) overlaps; only
    then does the server collect each worker's READY.  Idle workers sit
    in a LIFO queue — the most recently used worker is the cache-warm
    one — and ``checkout``/``checkin`` make the pool safe to drive from
    several Exchange threads at once.
    """

    def __init__(
        self,
        definition: UDFDefinition,
        env: ServerEnvironment,
        size: int,
        buffer_size: int,
        payload_blob: bytes,
    ):
        self.definition = definition
        self.size = max(1, size)
        mp_ctx = multiprocessing.get_context(_start_method())
        self._workers: List[_Worker] = []
        self._idle: "queue.LifoQueue[_Worker]" = queue.LifoQueue()
        try:
            for index in range(self.size):
                self._workers.append(
                    _Worker(mp_ctx, definition, buffer_size, payload_blob,
                            index)
                )
            for worker in self._workers:
                msg_type, payload = worker.recv()
                if msg_type == MSG_ERROR:
                    raise _reraise(payload, definition.name)
                if msg_type != MSG_READY:
                    raise UDFInvocationError(
                        f"remote executor for {definition.name!r} failed "
                        f"to start"
                    )
        except Exception:
            self.close()
            raise
        for worker in self._workers:
            self._idle.put(worker)

    @property
    def closed(self) -> bool:
        return not self._workers

    @property
    def workers(self) -> List[_Worker]:
        return list(self._workers)

    def checkout(self) -> _Worker:
        """Block until a worker is idle and take it."""
        return self._idle.get()

    def checkout_nowait(self) -> Optional[_Worker]:
        """Take an idle worker if one is free right now, else ``None``.

        Extra shard workers are acquired non-blockingly on purpose: two
        concurrent ``invoke_batch`` calls each blocking for *several*
        workers could deadlock holding partial sets.  Each call blocks
        for exactly one worker and only opportunistically adds more.
        """
        try:
            return self._idle.get_nowait()
        except queue.Empty:
            return None

    def checkin(self, worker: _Worker) -> None:
        self._idle.put(worker)

    def stats(self) -> dict:
        """Rollup across workers, keeping the flat single-channel keys.

        ``buffer_size`` is per worker (they are all sized alike); the
        traffic counters are summed; ``per_worker`` holds each channel's
        own dict for attribution.
        """
        per_worker = [worker.channel.stats() for worker in self._workers]
        rollup = {
            "buffer_size": per_worker[0]["buffer_size"] if per_worker else 0,
            "messages_sent": sum(s["messages_sent"] for s in per_worker),
            "messages_received": sum(
                s["messages_received"] for s in per_worker
            ),
            "chunks_sent": sum(s["chunks_sent"] for s in per_worker),
            "chunks_received": sum(
                s["chunks_received"] for s in per_worker
            ),
            "workers": len(per_worker),
            "per_worker": per_worker,
        }
        return rollup

    def close(self) -> None:
        """Join or terminate every worker; drop all IPC references.

        Swapping out the worker list and idle queue before joining means
        no checkout can hand back a dying worker, and the shm arrays and
        semaphores lose their last server-side references once the
        workers are gone — nothing leaks across queries.
        """
        workers, self._workers = self._workers, []
        self._idle = queue.LifoQueue()
        for worker in workers:
            worker.close()


def _stamp_shard(exc: BaseException, start: int, stop: int) -> None:
    """Attach the in-flight row range to a worker-crash exception."""
    if isinstance(exc, UDFCrashed) and exc.shard is None:
        exc.shard = (start, stop)


def _split_shards(tuples: tuple, count: int) -> List[tuple]:
    """Contiguous near-even shards; concatenation restores input order."""
    base, extra = divmod(len(tuples), count)
    shards = []
    offset = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(tuples[offset:offset + size])
        offset += size
    return shards


class _RemoteTierMirror:
    """Aggregated worker tier snapshots, shaped like a ``TierState``.

    The profile's ``tier_summary`` reads ``tier``/``promotions``/
    ``deopts``/``tier1_batches`` off whatever the executor bound; for
    isolated designs that is this rollup of the per-worker reports.
    """

    __slots__ = ("tier", "calls", "promotions", "deopts", "tier1_batches",
                 "refusal", "demoted")

    def __init__(self, reports):
        reports = list(reports)
        self.tier = max((r.get("tier", 0) for r in reports), default=0)
        self.calls = sum(r.get("calls", 0) for r in reports)
        self.promotions = sum(r.get("promotions", 0) for r in reports)
        self.deopts = sum(r.get("deopts", 0) for r in reports)
        self.tier1_batches = sum(
            r.get("tier1_batches", 0) for r in reports
        )
        self.refusal = next(
            (r["refusal"] for r in reports if r.get("refusal")), None
        )
        self.demoted = any(r.get("demoted") for r in reports)


class RemoteExecutor(UDFExecutor):
    """Per-query remote executor pool (Design 2 / Design 4)."""

    def __init__(
        self,
        definition: UDFDefinition,
        env: ServerEnvironment,
        buffer_size: Optional[int] = None,
        parallelism: Optional[int] = None,
    ):
        super().__init__(definition, env)
        if parallelism is None:
            parallelism = getattr(env, "parallelism", 1) or 1
        if definition.callbacks:
            # Callbacks are interactive round trips through the query's
            # single broker binding; a UDF that declared any keeps one
            # worker so callback traffic stays strictly ordered.
            parallelism = 1
        parallelism = max(1, int(parallelism))
        if buffer_size is None:
            # Pre-size from the expected batch payload so a whole batch
            # usually crosses in one chunk instead of chunking at a
            # fixed maximum regardless of workload.
            buffer_size = _estimate_buffer_size(
                definition, getattr(env, "batch_size", 1)
            )
        if definition.design.is_sandboxed:
            worker_payload = (
                "jaguar",
                bytes(self._sandbox_classfile_bytes(definition, env)),
                definition.entry,
                tuple(definition.callbacks),
                definition.fuel,
                definition.memory,
                definition.design is not Design.SANDBOX_INTERP,
                # Copy elision for flow-certified read-only parameters:
                # the worker re-verifies and re-certifies the classfile
                # itself, but the server-side gate (definition.flows)
                # ships along so stripping the certificate restores the
                # defensive-copy baseline end to end.
                definition.flows is not None,
                # Tiering rides the same gate: each worker promotes
                # independently (its own call counts and kernel) and
                # reports its tier state back with batch results.
                bool(getattr(env, "tiering", False)),
                int(getattr(env, "tier1_threshold", 128)),
            )
        else:
            # Validate importability in the server before shipping the
            # module path to the worker.
            resolve_native_payload(definition.payload)
            worker_payload = ("native", bytes(definition.payload))
        self._reservation = None
        #: Latest tier snapshot per worker index (tiering only).  Each
        #: worker is drained by the thread that dispatched to it, so
        #: per-index access never races.
        self._tier_reports: dict = {}
        self._pool = WorkerPool(
            definition, env, parallelism, buffer_size, _dumps(worker_payload)
        )

    @staticmethod
    def _sandbox_classfile_bytes(
        definition: UDFDefinition, env: ServerEnvironment
    ) -> bytes:
        from ..vm.classfile import MAGIC
        from .sandbox import compile_udf_source

        if definition.payload[:4] == MAGIC:
            return definition.payload
        source = definition.payload.decode("utf-8")
        cls = compile_udf_source(source, f"udf_{definition.name}", env)
        return cls.to_bytes()

    @property
    def _process(self):
        """First worker's process (compat shim for pre-pool callers)."""
        workers = self._pool.workers
        return workers[0].process if workers else None

    @property
    def pool_size(self) -> int:
        return self._pool.size

    def channel_stats(self) -> dict:
        """Server-side IPC traffic counters (for benchmarks/audits).

        Flat keys aggregate every worker channel; ``per_worker`` breaks
        the same counters out per process.  When a profile is attached,
        the pool's queue-wait and shm round-trip latency summaries ride
        along under ``queue_wait_ns``/``round_trip_ns``.
        """
        stats = self._pool.stats()
        prof = self.profile
        if prof is not None:
            stats["queue_wait_ns"] = prof.queue_wait_ns.summary()
            stats["round_trip_ns"] = prof.round_trip_ns.summary()
        if self._tier_reports:
            reports = dict(sorted(self._tier_reports.items()))
            stats["tier"] = {
                # Workers promote independently; the rollup reports the
                # best tier reached and the summed event counters.
                "tier": max(r.get("tier", 0) for r in reports.values()),
                "promotions": sum(
                    r.get("promotions", 0) for r in reports.values()
                ),
                "deopts": sum(r.get("deopts", 0) for r in reports.values()),
                "tier1_batches": sum(
                    r.get("tier1_batches", 0) for r in reports.values()
                ),
                "per_worker": reports,
            }
        return stats

    def _note_tier_info(self, index: int, info: Optional[dict]) -> None:
        """Fold one worker's tier snapshot into server-side accounting.

        Snapshots carry worker-lifetime totals; the profile counters get
        the *delta* against that worker's previous report, so server
        counts match worker events exactly however batches interleave.
        """
        if not info:
            return
        previous = self._tier_reports.get(index) or {}
        self._tier_reports[index] = info
        prof = self.profile
        if prof is None:
            return
        for key, counter in (
            ("promotions", prof.promotions),
            ("deopts", prof.deopts),
            ("tier1_batches", prof.tier1_batches),
        ):
            delta = info.get(key, 0) - previous.get(key, 0)
            if delta > 0:
                counter.inc(delta)
        prof.bind_tier(_RemoteTierMirror(self._tier_reports.values()))

    # -- admission ------------------------------------------------------------

    def _worker_claims(self) -> tuple:
        """Per-worker worst case to reserve against the UDF's group.

        Each pool worker can run one invocation at a time, so N workers
        mean N concurrent worst cases.  The certified constant bound is
        the tight claim; otherwise the definition's declared quotas,
        falling back to the server VM's default policy (which is what
        the worker-side VM will enforce).
        """
        from ..analysis.bounds import constant_bound
        from ..vm.resources import DEFAULT_FUEL, DEFAULT_MEMORY

        policy = getattr(self.env.vm, "policy", None)
        fuel_claim = self.definition.fuel or getattr(
            policy, "fuel", DEFAULT_FUEL
        )
        mem_claim = self.definition.memory or getattr(
            policy, "memory", DEFAULT_MEMORY
        )
        cert = self.definition.certificate
        if cert is not None:
            fuel_const = constant_bound(cert.fuel_bound)
            if fuel_const is not None:
                fuel_claim = min(fuel_claim, fuel_const)
            mem_const = constant_bound(cert.mem_bound)
            if mem_const is not None:
                mem_claim = min(mem_claim, mem_const)
        return fuel_claim, mem_claim

    def begin_query(self, binding=None) -> None:
        super().begin_query(binding)
        registry = self.env.thread_groups
        if (
            self._reservation is not None
            or registry is None
            or self._pool.closed
            or not self.definition.design.is_sandboxed
        ):
            return
        # Per-worker quota attribution: one labelled claim per pool
        # worker, so the group ledger shows which process holds what and
        # admission control sees the pool's true concurrent worst case.
        group = registry.group_for(self.definition.name.lower())
        fuel_claim, mem_claim = self._worker_claims()
        held = []
        try:
            for worker in self._pool.workers:
                holder = (
                    f"{self.definition.name.lower()}/worker{worker.index}"
                )
                group.reserve(fuel_claim, mem_claim, holder=holder)
                held.append(holder)
        except Exception:
            for holder in held:
                group.release(fuel_claim, mem_claim, holder=holder)
            raise
        self._reservation = (group, fuel_claim, mem_claim, held)

    def _release_reservation(self) -> None:
        if self._reservation is None:
            return
        group, fuel_claim, mem_claim, held = self._reservation
        self._reservation = None
        for holder in held:
            group.release(fuel_claim, mem_claim, holder=holder)

    # -- invocation ------------------------------------------------------------

    def _collect(self, worker: _Worker, expected: int):
        """Drive one worker's channel until its result (or error) lands.

        Callback requests are serviced inline — each one is a shared
        memory round trip through the query's broker binding, the per
        callback cost Figure 8 measures.
        """
        while True:
            msg_type, payload = worker.recv()
            if msg_type == expected:
                result = _loads(payload)
                return (
                    list(result) if expected == MSG_RESULT_BATCH else result
                )
            if (msg_type == MSG_RESULT_BATCH2
                    and expected == MSG_RESULT_BATCH):
                # Tiering-enabled worker: results plus its tier snapshot.
                results, tier_info = _loads(payload)
                self._note_tier_info(worker.index, tier_info)
                return list(results)
            if msg_type == MSG_CALLBACK:
                name, cb_args = _loads(payload)
                try:
                    reply = self.binding.invoke(name, *cb_args)
                    worker.send(MSG_CB_REPLY, _dumps(reply))
                except Exception as exc:  # callback failed: tell the UDF
                    worker.send(MSG_ERROR, _dumps(_shippable(exc)))
            elif msg_type == MSG_ERROR:
                raise _reraise(payload, self.definition.name)
            else:
                raise UDFInvocationError(
                    f"unexpected message type {msg_type} from executor"
                )

    def invoke(self, args: Sequence[object]) -> object:
        if self._pool.closed:
            raise UDFInvocationError("remote executor is closed")
        if self.binding is None:
            self.begin_query()
        prof = self.profile
        if prof is None:
            worker = self._pool.checkout()
            try:
                worker.send(MSG_INVOKE, _dumps(tuple(args)))
                return self._collect(worker, MSG_RESULT)
            finally:
                self._pool.checkin(worker)
        started = perf_counter_ns()
        worker = self._pool.checkout()
        dispatched = perf_counter_ns()
        prof.queue_wait_ns.observe(dispatched - started)
        try:
            worker.send(MSG_INVOKE, _dumps(tuple(args)))
            result = self._collect(worker, MSG_RESULT)
        except BaseException as exc:
            prof.record_error(exc)
            raise
        finally:
            self._pool.checkin(worker)
        ended = perf_counter_ns()
        prof.round_trip_ns.observe(ended - dispatched)
        prof.record_invocations(1, ended - started)
        return result

    def invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        """Shard one batch across idle workers, pipelined, order kept.

        With one worker (or a batch too small to shard) this is the
        serial protocol: N argument tuples cross together and N results
        come back together — two hand-offs per *batch* instead of per
        tuple.  With more workers the batch splits into contiguous
        shards; every shard is sent before any result is awaited, so all
        workers compute while the server marshals, and results are
        collected in shard order — concatenation restores input order
        regardless of which worker finished first.

        The first failing invocation aborts the batch with its original
        exception, exactly as the per-tuple loop would have raised it:
        shards are contiguous, so the lowest-shard error is the earliest
        input row's error.  Remaining workers are still drained so their
        channels stay request/response aligned for the next batch.
        """
        if not args_list:
            return []
        if self._pool.closed:
            raise UDFInvocationError("remote executor is closed")
        if self.binding is None:
            self.begin_query()
        pool = self._pool
        prof = self.profile
        tuples = tuple(tuple(args) for args in args_list)
        want = min(pool.size, max(1, len(tuples) // _MIN_SHARD_ROWS))
        started = perf_counter_ns() if prof is not None else 0
        worker = pool.checkout()
        if want == 1:
            dispatched = perf_counter_ns() if prof is not None else 0
            if prof is not None:
                prof.queue_wait_ns.observe(dispatched - started)
            try:
                worker.send(MSG_INVOKE_BATCH, _dumps(tuples))
                results = self._collect(worker, MSG_RESULT_BATCH)
            except BaseException as exc:
                _stamp_shard(exc, 0, len(tuples))
                if prof is not None:
                    prof.record_error(exc)
                raise
            finally:
                pool.checkin(worker)
            if prof is not None:
                ended = perf_counter_ns()
                prof.round_trip_ns.observe(ended - dispatched)
                prof.record_invocations(len(tuples), ended - started)
            return results
        workers = [worker]
        while len(workers) < want:
            extra = pool.checkout_nowait()
            if extra is None:
                break
            workers.append(extra)
        shards = _split_shards(tuples, len(workers))
        # Cumulative row offsets: shard ``i`` covers the half-open input
        # range ``[offsets[i], offsets[i + 1])`` — the crash report's
        # shard slice.
        offsets = [0]
        for shard in shards:
            offsets.append(offsets[-1] + len(shard))
        if prof is not None:
            prof.queue_wait_ns.observe(perf_counter_ns() - started)
        results: list = []
        errors: List[Tuple[int, Exception]] = []
        sent: List[_Worker] = []
        sent_at: List[int] = []
        try:
            for index, (shard_worker, shard) in enumerate(
                zip(workers, shards)
            ):
                try:
                    if prof is not None:
                        sent_at.append(perf_counter_ns())
                    shard_worker.send(MSG_INVOKE_BATCH, _dumps(shard))
                except Exception as exc:
                    _stamp_shard(exc, offsets[index], offsets[index + 1])
                    errors.append((index, exc))
                    break  # later shards were never dispatched
                sent.append(shard_worker)
            # Drain every worker that got a request — even after an
            # earlier shard failed — so each channel is back at its
            # request/response boundary before re-entering the pool.
            for index, shard_worker in enumerate(sent):
                try:
                    part = self._collect(shard_worker, MSG_RESULT_BATCH)
                except Exception as exc:
                    _stamp_shard(exc, offsets[index], offsets[index + 1])
                    errors.append((index, exc))
                    continue
                if prof is not None:
                    prof.round_trip_ns.observe(
                        perf_counter_ns() - sent_at[index]
                    )
                if not errors:
                    results.extend(part)
        finally:
            for shard_worker in workers:
                pool.checkin(shard_worker)
        if errors:
            # Shards are contiguous, so the lowest shard's failure is
            # the earliest input row's failure — what serial raises.
            first = min(errors, key=lambda pair: pair[0])[1]
            if prof is not None:
                prof.record_error(first)
            raise first
        if prof is not None:
            prof.record_invocations(len(tuples), perf_counter_ns() - started)
        return results

    # -- teardown ----------------------------------------------------------------

    def end_query(self) -> None:
        super().end_query()
        self.close()

    def close(self) -> None:
        self._release_reservation()
        if not self._pool.closed:
            self._pool.close()
        self.binding = None


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _shippable(exc: Exception) -> Exception:
    """Ensure an exception survives pickling across the boundary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return UDFInvocationError(f"{type(exc).__name__}: {exc}")


def _reraise(payload: bytes, udf_name: str) -> Exception:
    try:
        exc = _loads(payload)
    except Exception:
        return UDFInvocationError(
            f"UDF {udf_name!r} failed remotely (unreadable error)"
        )
    if isinstance(exc, Exception):
        return exc
    return UDFInvocationError(f"UDF {udf_name!r} failed remotely: {exc}")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

class _RemoteCallbackPort:
    """Worker-side callback dispatch: every call crosses the boundary.

    This is the per-callback cost Figure 8 measures for IC++: a shared
    memory round trip (two copies, two semaphore hand-offs) per request.
    """

    def __init__(self, channel: _ShmChannel):
        self.channel = channel

    def invoke(self, name: str, args: tuple) -> object:
        self.channel.worker_send(MSG_CALLBACK, _dumps((name, args)))
        msg_type, payload = self.channel.worker_recv()
        if msg_type == MSG_CB_REPLY:
            return _loads(payload)
        if msg_type == MSG_ERROR:
            raise _reraise(payload, "<callback>")
        raise CallbackError(f"unexpected reply type {msg_type} to callback")


class _WorkerNativeContext:
    """The ``ctx`` argument given to native UDFs running remotely."""

    __slots__ = ("_port",)

    def __init__(self, port: _RemoteCallbackPort):
        self._port = port

    def callback(self, name: str, *args):
        return self._port.invoke(name, args)


def _worker_main(array, s2w_ready, s2w_ack, w2s_ready, w2s_ack,
                 payload_blob: bytes) -> None:
    channel = _ShmChannel(
        memoryview(array).cast("B"), s2w_ready, s2w_ack, w2s_ready, w2s_ack
    )
    port = _RemoteCallbackPort(channel)
    try:
        invoke, invoke_batch = _build_worker_invoker(
            _loads(payload_blob), port
        )
    except Exception as exc:
        channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
        return
    channel.worker_send(MSG_READY, b"")
    while True:
        msg_type, payload = channel.worker_recv()
        if msg_type == MSG_SHUTDOWN:
            return
        if msg_type == MSG_INVOKE_BATCH:
            # Batched request: one unmarshal, N invocations, one reply.
            # A failure anywhere aborts the batch with that exception —
            # the same exception the per-tuple loop would have raised
            # first, so error semantics do not drift.  A tiering-enabled
            # worker runs its tiered batch path instead and replies with
            # results plus its tier snapshot.
            try:
                if invoke_batch is not None:
                    results, tier_info = invoke_batch(_loads(payload))
                else:
                    results = [invoke(args) for args in _loads(payload)]
                    tier_info = None
            except Exception as exc:
                channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
                continue
            if tier_info is not None:
                channel.worker_send(
                    MSG_RESULT_BATCH2, _dumps((results, tier_info))
                )
            else:
                channel.worker_send(MSG_RESULT_BATCH, _dumps(results))
            continue
        if msg_type != MSG_INVOKE:
            channel.worker_send(
                MSG_ERROR,
                _dumps(UDFInvocationError(f"unexpected message {msg_type}")),
            )
            continue
        try:
            args = _loads(payload)
            result = invoke(args)
        except Exception as exc:
            channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
            continue
        channel.worker_send(MSG_RESULT, _dumps(result))


def _build_worker_invoker(worker_payload: tuple, port: _RemoteCallbackPort):
    """Build ``(invoke, invoke_batch)`` for this worker's payload.

    ``invoke`` runs one invocation.  ``invoke_batch`` is ``None`` unless
    the payload enables tiering, in which case it runs a whole batch
    through the worker's own tier state machine and returns
    ``(results, tier_snapshot)``.
    """
    kind = worker_payload[0]
    if kind == "native":
        func = resolve_native_payload(worker_payload[1])
        code = getattr(func, "__code__", None)
        takes_ctx = bool(
            code is not None
            and code.co_argcount > 0
            and code.co_varnames[0] == "ctx"
        )
        ctx = _WorkerNativeContext(port)
        if takes_ctx:
            return (lambda args: func(ctx, *args)), None
        return (lambda args: func(*args)), None

    if kind == "jaguar":
        (__, class_bytes, entry, callbacks, fuel, memory, use_jit,
         elide_copies, tiering, tier1_threshold) = worker_payload
        from ..vm.machine import JaguarVM
        from ..vm.security import Permissions
        from .callbacks import standard_callback_signatures

        vm = JaguarVM(
            callback_signatures=standard_callback_signatures(),
            use_jit=use_jit,
        )
        handlers = {
            name: _make_remote_handler(port, name)
            for name in standard_callback_signatures()
        }
        # None quotas inherit the worker VM's default QuotaPolicy.
        loaded = vm.load_udf(
            name="remote",
            classfiles=[class_bytes],
            permissions=Permissions(callbacks=frozenset(callbacks)),
            callbacks=handlers,
            fuel=fuel or None,
            memory=memory or None,
        )
        context = loaded.make_context()
        # ``make_invoker`` hoists lookup/JIT out of the loop and, when
        # the worker-side flow certificate proves parameters read-only,
        # skips the defensive copy of byte arrays arriving from shared
        # memory — they were already copied out of the ring buffer by
        # unpickling, so the sandbox can use that buffer directly.
        invoke_one = loaded.make_invoker(
            entry, context, elide_copies=elide_copies
        )
        account = context.account

        def invoke(args):
            account.reset()
            return invoke_one(args)

        if not tiering:
            return invoke, None

        # Worker-side tiering: this process owns its own promotion state
        # machine — call counts, kernel, deopt tally — and snapshots it
        # into every batch reply so the server can aggregate.  The deopt
        # tail uses the raw invoker (``run_tiered_batch`` resets the
        # account per re-executed row itself).
        from ..vm.tier import TierState, maybe_promote, run_tiered_batch

        state = TierState(tier1_threshold)

        def invoke_batch(rows):
            rows = list(rows)
            state.calls += len(rows)
            if maybe_promote(
                state, loaded, entry, context, use_flows=elide_copies
            ):
                results, __ = run_tiered_batch(
                    state, context, rows, invoke_one
                )
            else:
                results = [invoke(args) for args in rows]
            return results, state.snapshot()

        return invoke, invoke_batch

    raise UDFInvocationError(f"unknown worker payload kind {kind!r}")


def _make_remote_handler(port: _RemoteCallbackPort, name: str):
    def handler(*args):
        return port.invoke(name, args)

    return handler
