"""Designs 2 and 4: UDFs in an isolated executor process.

Section 4.1, transliterated:

* "one remote executor process is assigned to each UDF in the query ...
  created once per query (not once per function invocation)" — the
  registry builds a fresh :class:`RemoteExecutor` per query;
* "Communication between the server and the remote executors happens
  through shared memory.  The server copies the function arguments into
  shared memory, and 'sends' a request by releasing a semaphore.  The
  remote executor, which was blocked trying to acquire the semaphore,
  now executes the function and places the results back into shared
  memory.  The hand-off for callback requests and for the final answer
  return also occur through a semaphore in shared memory." — the
  :class:`_ShmChannel` below implements exactly this, with chunking so
  payloads larger than the buffer still flow through it (each chunk is
  one more copy + semaphore hand-off, so the cost grows with data size,
  as the paper expects);
* crashes are contained: if the worker dies, the server raises
  :class:`~repro.errors.UDFCrashed` and keeps serving.

Design 4 (the paper extrapolates it; we build it) runs a JaguarVM
*inside* the worker, so the UDF gets both process isolation and the
sandbox's verification/quotas; its callbacks pay the process-boundary
price, which is what makes Design 4 ≈ Design 2 + Design 3 measurable.

Marshalling uses :mod:`pickle` restricted to primitive SQL values (see
``_dumps``/``_loads``) — the analog of PREDATOR copying raw argument
bytes into the segment.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
from typing import Optional, Sequence, Tuple

from ..errors import CallbackError, UDFCrashed, UDFInvocationError, VMError
from .designs import Design
from .factory import UDFExecutor
from .udf import ServerEnvironment, UDFDefinition, resolve_native_payload

_HEADER = struct.Struct("<BII")  # msg type, total length, chunk length
DEFAULT_BUFFER = 256 * 1024
MAX_BUFFER = 8 * 1024 * 1024
_POLL_INTERVAL = 0.05
_STARTUP_TIMEOUT = 30.0

MSG_READY = 1
MSG_INVOKE = 2
MSG_RESULT = 3
MSG_CALLBACK = 4
MSG_CB_REPLY = 5
MSG_ERROR = 6
MSG_SHUTDOWN = 7
MSG_INVOKE_BATCH = 8
MSG_RESULT_BATCH = 9

#: Marshalled-size guesses per SQL parameter type, used to pre-size the
#: shared buffer so a whole batch usually crosses in one chunk.
_PARAM_SIZE_ESTIMATE = {"bytes": 16384, "str": 256}
_PARAM_SIZE_DEFAULT = 64


def _estimate_buffer_size(definition: UDFDefinition, batch_hint: int) -> int:
    """Size the shm buffer for one batched request/response.

    Chunking still works as the fallback (a 100 KB byte array at batch
    64 will always exceed any sane buffer), but the common case — a
    batch of scalar or small-payload argument tuples — should cross in
    a single chunk, i.e. one copy + one semaphore hand-off.
    """
    per_tuple = _PARAM_SIZE_DEFAULT  # pickle framing per tuple
    for param in definition.signature.param_types:
        per_tuple += _PARAM_SIZE_ESTIMATE.get(param, _PARAM_SIZE_DEFAULT)
    need = per_tuple * max(1, batch_hint) + 4096
    return max(DEFAULT_BUFFER, min(need, MAX_BUFFER))


def _dumps(value: object) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _loads(data: bytes) -> object:
    return pickle.loads(data)


class _ShmChannel:
    """Half-duplex chunked messaging over one shared-memory buffer.

    Four semaphores: data-ready and chunk-ack in each direction.  The
    protocol strictly alternates (request, then response), mirroring the
    paper's hand-off description.
    """

    def __init__(self, buffer, s2w_ready, s2w_ack, w2s_ready, w2s_ack):
        self.buffer = buffer
        self.s2w_ready = s2w_ready
        self.s2w_ack = s2w_ack
        self.w2s_ready = w2s_ready
        self.w2s_ack = w2s_ack
        self.max_chunk = len(buffer) - _HEADER.size
        # Local (per-process) traffic counters; each side counts what it
        # sent/received, so the server's view is the IPC tax it paid.
        self.messages_sent = 0
        self.messages_received = 0
        self.chunks_sent = 0
        self.chunks_received = 0

    # -- direction-agnostic primitives ---------------------------------------

    def _send(self, ready, ack, msg_type: int, payload: bytes) -> None:
        total = len(payload)
        offset = 0
        first = True
        while first or offset < total:
            if not first:
                ack.acquire()  # receiver consumed the previous chunk
            chunk = payload[offset:offset + self.max_chunk]
            _HEADER.pack_into(self.buffer, 0, msg_type, total, len(chunk))
            self.buffer[_HEADER.size:_HEADER.size + len(chunk)] = chunk
            ready.release()
            offset += len(chunk)
            first = False
            self.chunks_sent += 1
        self.messages_sent += 1

    def _recv(self, ready, ack, alive_check=None) -> Tuple[int, bytes]:
        self._acquire(ready, alive_check)
        msg_type, total, chunk_len = _HEADER.unpack_from(self.buffer, 0)
        data = bytearray(
            self.buffer[_HEADER.size:_HEADER.size + chunk_len]
        )
        self.chunks_received += 1
        while len(data) < total:
            ack.release()
            self._acquire(ready, alive_check)
            __, __, chunk_len = _HEADER.unpack_from(self.buffer, 0)
            data += self.buffer[_HEADER.size:_HEADER.size + chunk_len]
            self.chunks_received += 1
        self.messages_received += 1
        return msg_type, bytes(data)

    def stats(self) -> dict:
        return {
            "buffer_size": len(self.buffer),
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "chunks_sent": self.chunks_sent,
            "chunks_received": self.chunks_received,
        }

    @staticmethod
    def _acquire(semaphore, alive_check) -> None:
        if alive_check is None:
            semaphore.acquire()
            return
        while not semaphore.acquire(timeout=_POLL_INTERVAL):
            if not alive_check():
                raise UDFCrashed(
                    "remote UDF executor process died; the server survives"
                )

    # -- server side --------------------------------------------------------------

    def server_send(self, msg_type: int, payload: bytes) -> None:
        self._send(self.s2w_ready, self.s2w_ack, msg_type, payload)

    def server_recv(self, alive_check) -> Tuple[int, bytes]:
        return self._recv(self.w2s_ready, self.w2s_ack, alive_check)

    # -- worker side ----------------------------------------------------------------

    def worker_send(self, msg_type: int, payload: bytes) -> None:
        self._send(self.w2s_ready, self.w2s_ack, msg_type, payload)

    def worker_recv(self) -> Tuple[int, bytes]:
        return self._recv(self.s2w_ready, self.s2w_ack)


class RemoteExecutor(UDFExecutor):
    """Per-query remote executor process (Design 2 / Design 4)."""

    def __init__(
        self,
        definition: UDFDefinition,
        env: ServerEnvironment,
        buffer_size: Optional[int] = None,
    ):
        super().__init__(definition, env)
        if buffer_size is None:
            # Pre-size from the expected batch payload so a whole batch
            # usually crosses in one chunk instead of chunking at a
            # fixed maximum regardless of workload.
            buffer_size = _estimate_buffer_size(
                definition, getattr(env, "batch_size", 1)
            )
        if definition.design.is_sandboxed:
            worker_payload = (
                "jaguar",
                bytes(self._sandbox_classfile_bytes(definition, env)),
                definition.entry,
                tuple(definition.callbacks),
                definition.fuel,
                definition.memory,
                definition.design is not Design.SANDBOX_INTERP,
            )
        else:
            # Validate importability in the server before shipping the
            # module path to the worker.
            resolve_native_payload(definition.payload)
            worker_payload = ("native", bytes(definition.payload))

        mp = multiprocessing.get_context(_start_method())
        self._array = mp.Array("B", buffer_size, lock=False)
        self._channel = _ShmChannel(
            memoryview(self._array).cast("B"),
            mp.Semaphore(0), mp.Semaphore(0),
            mp.Semaphore(0), mp.Semaphore(0),
        )
        self._process = mp.Process(
            target=_worker_main,
            args=(
                self._array,
                self._channel.s2w_ready, self._channel.s2w_ack,
                self._channel.w2s_ready, self._channel.w2s_ack,
                _dumps(worker_payload),
            ),
            daemon=True,
            name=f"udf-executor-{definition.name}",
        )
        self._process.start()
        msg_type, startup_payload = self._channel.server_recv(self._alive)
        if msg_type == MSG_ERROR:
            self.close()
            raise _reraise(startup_payload, definition.name)
        if msg_type != MSG_READY:
            self.close()
            raise UDFInvocationError(
                f"remote executor for {definition.name!r} failed to start"
            )

    @staticmethod
    def _sandbox_classfile_bytes(
        definition: UDFDefinition, env: ServerEnvironment
    ) -> bytes:
        from ..vm.classfile import MAGIC
        from .sandbox import compile_udf_source

        if definition.payload[:4] == MAGIC:
            return definition.payload
        source = definition.payload.decode("utf-8")
        cls = compile_udf_source(source, f"udf_{definition.name}", env)
        return cls.to_bytes()

    def _alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def channel_stats(self) -> dict:
        """Server-side IPC traffic counters (for benchmarks/audits)."""
        return self._channel.stats()

    # -- invocation ------------------------------------------------------------

    def invoke(self, args: Sequence[object]) -> object:
        if self.binding is None:
            self.begin_query()
        if self._process is None:
            raise UDFInvocationError("remote executor is closed")
        channel = self._channel
        channel.server_send(MSG_INVOKE, _dumps(tuple(args)))
        while True:
            msg_type, payload = channel.server_recv(self._alive)
            if msg_type == MSG_RESULT:
                return _loads(payload)
            if msg_type == MSG_CALLBACK:
                name, cb_args = _loads(payload)
                try:
                    reply = self.binding.invoke(name, *cb_args)
                    channel.server_send(MSG_CB_REPLY, _dumps(reply))
                except Exception as exc:  # callback failed: tell the UDF
                    channel.server_send(MSG_ERROR, _dumps(_shippable(exc)))
            elif msg_type == MSG_ERROR:
                raise _reraise(payload, self.definition.name)
            else:
                raise UDFInvocationError(
                    f"unexpected message type {msg_type} from executor"
                )

    def invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        """One shared-memory round trip for a whole batch.

        N argument tuples are marshalled into the channel together and N
        results come back together — two hand-offs per *batch* instead
        of per tuple, the amortization the paper's Section 5 cost
        decomposition motivates.  Callbacks still cross per call (they
        are interactive by nature), and the first failing invocation
        aborts the batch with its original exception, exactly as the
        per-tuple loop would have raised it.
        """
        if not args_list:
            return []
        if self.binding is None:
            self.begin_query()
        if self._process is None:
            raise UDFInvocationError("remote executor is closed")
        channel = self._channel
        channel.server_send(
            MSG_INVOKE_BATCH,
            _dumps(tuple(tuple(args) for args in args_list)),
        )
        while True:
            msg_type, payload = channel.server_recv(self._alive)
            if msg_type == MSG_RESULT_BATCH:
                return list(_loads(payload))
            if msg_type == MSG_CALLBACK:
                name, cb_args = _loads(payload)
                try:
                    reply = self.binding.invoke(name, *cb_args)
                    channel.server_send(MSG_CB_REPLY, _dumps(reply))
                except Exception as exc:  # callback failed: tell the UDF
                    channel.server_send(MSG_ERROR, _dumps(_shippable(exc)))
            elif msg_type == MSG_ERROR:
                raise _reraise(payload, self.definition.name)
            else:
                raise UDFInvocationError(
                    f"unexpected message type {msg_type} from executor"
                )

    # -- teardown ----------------------------------------------------------------

    def end_query(self) -> None:
        super().end_query()
        self.close()

    def close(self) -> None:
        process = self._process
        if process is None:
            return
        self._process = None
        try:
            if process.is_alive():
                self._channel.server_send(MSG_SHUTDOWN, b"")
                process.join(timeout=1.0)
        except Exception:
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        self.binding = None


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _shippable(exc: Exception) -> Exception:
    """Ensure an exception survives pickling across the boundary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return UDFInvocationError(f"{type(exc).__name__}: {exc}")


def _reraise(payload: bytes, udf_name: str) -> Exception:
    try:
        exc = _loads(payload)
    except Exception:
        return UDFInvocationError(
            f"UDF {udf_name!r} failed remotely (unreadable error)"
        )
    if isinstance(exc, Exception):
        return exc
    return UDFInvocationError(f"UDF {udf_name!r} failed remotely: {exc}")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

class _RemoteCallbackPort:
    """Worker-side callback dispatch: every call crosses the boundary.

    This is the per-callback cost Figure 8 measures for IC++: a shared
    memory round trip (two copies, two semaphore hand-offs) per request.
    """

    def __init__(self, channel: _ShmChannel):
        self.channel = channel

    def invoke(self, name: str, args: tuple) -> object:
        self.channel.worker_send(MSG_CALLBACK, _dumps((name, args)))
        msg_type, payload = self.channel.worker_recv()
        if msg_type == MSG_CB_REPLY:
            return _loads(payload)
        if msg_type == MSG_ERROR:
            raise _reraise(payload, "<callback>")
        raise CallbackError(f"unexpected reply type {msg_type} to callback")


class _WorkerNativeContext:
    """The ``ctx`` argument given to native UDFs running remotely."""

    __slots__ = ("_port",)

    def __init__(self, port: _RemoteCallbackPort):
        self._port = port

    def callback(self, name: str, *args):
        return self._port.invoke(name, args)


def _worker_main(array, s2w_ready, s2w_ack, w2s_ready, w2s_ack,
                 payload_blob: bytes) -> None:
    channel = _ShmChannel(
        memoryview(array).cast("B"), s2w_ready, s2w_ack, w2s_ready, w2s_ack
    )
    port = _RemoteCallbackPort(channel)
    try:
        invoke = _build_worker_invoker(_loads(payload_blob), port)
    except Exception as exc:
        channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
        return
    channel.worker_send(MSG_READY, b"")
    while True:
        msg_type, payload = channel.worker_recv()
        if msg_type == MSG_SHUTDOWN:
            return
        if msg_type == MSG_INVOKE_BATCH:
            # Batched request: one unmarshal, N invocations, one reply.
            # A failure anywhere aborts the batch with that exception —
            # the same exception the per-tuple loop would have raised
            # first, so error semantics do not drift.
            try:
                results = [invoke(args) for args in _loads(payload)]
            except Exception as exc:
                channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
                continue
            channel.worker_send(MSG_RESULT_BATCH, _dumps(results))
            continue
        if msg_type != MSG_INVOKE:
            channel.worker_send(
                MSG_ERROR,
                _dumps(UDFInvocationError(f"unexpected message {msg_type}")),
            )
            continue
        try:
            args = _loads(payload)
            result = invoke(args)
        except Exception as exc:
            channel.worker_send(MSG_ERROR, _dumps(_shippable(exc)))
            continue
        channel.worker_send(MSG_RESULT, _dumps(result))


def _build_worker_invoker(worker_payload: tuple, port: _RemoteCallbackPort):
    kind = worker_payload[0]
    if kind == "native":
        func = resolve_native_payload(worker_payload[1])
        code = getattr(func, "__code__", None)
        takes_ctx = bool(
            code is not None
            and code.co_argcount > 0
            and code.co_varnames[0] == "ctx"
        )
        ctx = _WorkerNativeContext(port)
        if takes_ctx:
            return lambda args: func(ctx, *args)
        return lambda args: func(*args)

    if kind == "jaguar":
        __, class_bytes, entry, callbacks, fuel, memory, use_jit = worker_payload
        from ..vm.machine import JaguarVM
        from ..vm.security import Permissions
        from .callbacks import standard_callback_signatures

        vm = JaguarVM(
            callback_signatures=standard_callback_signatures(),
            use_jit=use_jit,
        )
        handlers = {
            name: _make_remote_handler(port, name)
            for name in standard_callback_signatures()
        }
        # None quotas inherit the worker VM's default QuotaPolicy.
        loaded = vm.load_udf(
            name="remote",
            classfiles=[class_bytes],
            permissions=Permissions(callbacks=frozenset(callbacks)),
            callbacks=handlers,
            fuel=fuel or None,
            memory=memory or None,
        )
        context = loaded.make_context()

        def invoke(args):
            context.account.reset()
            return loaded.invoke(entry, args, context=context)

        return invoke

    raise UDFInvocationError(f"unknown worker payload kind {kind!r}")


def _make_remote_handler(port: _RemoteCallbackPort, name: str):
    def handler(*args):
        return port.invoke(name, args)

    return handler
