"""The server-side UDF design space (Table 1 of the paper).

==========  ============  =========  ===========================
Design      language      process    paper label / our analog
==========  ============  =========  ===========================
Design 1    native        same       ``C++``   — Python callable in-process
(variant)   native+SFI    same       bounds-checked C++ (Section 5.4)
Design 2    native        isolated   ``IC++``  — remote executor process
Design 3    safe (VM)     same       ``JNI``   — JaguarVM with JIT
(variant)   safe (VM)     same       JVM without JIT (interpreter)
Design 4    safe (VM)     isolated   extrapolated in the paper; built here
==========  ============  =========  ===========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class Design(enum.Enum):
    """Where and how a UDF executes."""

    NATIVE_INTEGRATED = "native_integrated"    # Design 1, "C++"
    NATIVE_SFI = "native_sfi"                  # Design 1 + SFI-style checks
    NATIVE_ISOLATED = "native_isolated"        # Design 2, "IC++"
    SANDBOX_JIT = "sandbox_jit"                # Design 3, "JNI" (JIT on)
    SANDBOX_INTERP = "sandbox_interp"          # Design 3 without JIT
    SANDBOX_ISOLATED = "sandbox_isolated"      # Design 4

    @property
    def paper_label(self) -> str:
        return _PAPER_LABELS[self]

    @property
    def is_isolated(self) -> bool:
        """True when the UDF runs outside the server process."""
        return self in (Design.NATIVE_ISOLATED, Design.SANDBOX_ISOLATED)

    @property
    def is_sandboxed(self) -> bool:
        """True when the UDF runs under the JaguarVM sandbox."""
        return self in (
            Design.SANDBOX_JIT,
            Design.SANDBOX_INTERP,
            Design.SANDBOX_ISOLATED,
        )

    @property
    def language(self) -> str:
        return "jaguar" if self.is_sandboxed else "native"


_PAPER_LABELS = {
    Design.NATIVE_INTEGRATED: "C++",
    Design.NATIVE_SFI: "C++/bounds",
    Design.NATIVE_ISOLATED: "IC++",
    Design.SANDBOX_JIT: "JNI",
    Design.SANDBOX_INTERP: "JNI/nojit",
    Design.SANDBOX_ISOLATED: "IJNI",
}


@dataclass(frozen=True)
class DesignProperties:
    """Qualitative properties for the Table 1 comparison."""

    design: Design
    crash_contained: bool       # a crashing UDF cannot take down the server
    memory_safe: bool           # UDF cannot scribble over server memory
    resources_policed: bool     # CPU/memory quotas enforced (Section 6.2)
    portable: bool              # same payload runs on any client/server
    boundary_cost: str          # per-invocation boundary characterization


def design_space() -> List[DesignProperties]:
    """The qualitative design-space table (regenerates Table 1)."""
    return [
        DesignProperties(
            Design.NATIVE_INTEGRATED,
            crash_contained=False, memory_safe=False,
            resources_policed=False, portable=False,
            boundary_cost="none (direct call)",
        ),
        DesignProperties(
            Design.NATIVE_SFI,
            crash_contained=False, memory_safe=True,
            resources_policed=False, portable=False,
            boundary_cost="guarded buffer wrapping",
        ),
        DesignProperties(
            Design.NATIVE_ISOLATED,
            crash_contained=True, memory_safe=True,
            resources_policed=False, portable=False,
            boundary_cost="shared memory copy + semaphore hand-off",
        ),
        DesignProperties(
            Design.SANDBOX_JIT,
            crash_contained=True, memory_safe=True,
            resources_policed=True, portable=True,
            boundary_cost="argument marshalling (JNI analog)",
        ),
        DesignProperties(
            Design.SANDBOX_INTERP,
            crash_contained=True, memory_safe=True,
            resources_policed=True, portable=True,
            boundary_cost="argument marshalling (JNI analog)",
        ),
        DesignProperties(
            Design.SANDBOX_ISOLATED,
            crash_contained=True, memory_safe=True,
            resources_policed=True, portable=True,
            boundary_cost="shared memory copy + semaphore hand-off",
        ),
    ]
