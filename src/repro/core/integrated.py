"""Design 1: native UDFs integrated into the server process ("C++").

"Clearly, Design 1 will have the best performance of all the options
since it essentially corresponds to hard-coding the UDF into the server.
However ... system security might be compromised."

The executor is a direct call.  Callbacks do not cross any boundary: the
UDF receives a context whose ``callback`` goes straight to the broker —
the reason Figure 8's C++ line stays flat.

The security consequences are faithfully reproduced too: an exception
escapes into the server thread, and a malicious callable can reach any
server state it can import.  (Tests demonstrate both.)
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Optional, Sequence

from .factory import UDFExecutor
from .udf import ServerEnvironment, UDFDefinition, resolve_native_payload


class NativeUDFContext:
    """What an in-process native UDF gets to see.

    Deliberately *not* a security boundary: Design 1 trusts the UDF.
    The context is a convenience handle for callbacks, matching how a
    C++ UDF would simply call into server functions.
    """

    __slots__ = ("_binding",)

    def __init__(self, binding):
        self._binding = binding

    def callback(self, name: str, *args):
        return self._binding.invoke(name, *args)


class NativeIntegratedExecutor(UDFExecutor):
    """Direct in-process invocation of a host callable."""

    def __init__(self, definition: UDFDefinition, env: ServerEnvironment):
        super().__init__(definition, env)
        self._func: Callable = resolve_native_payload(definition.payload)
        code = getattr(self._func, "__code__", None)
        self._takes_ctx = bool(
            code is not None
            and code.co_argcount > 0
            and code.co_varnames[0] == "ctx"
        )
        self._ctx: Optional[NativeUDFContext] = None

    def begin_query(self, binding=None) -> None:
        super().begin_query(binding)
        self._ctx = NativeUDFContext(self.binding)

    def _raw_invoke(self, args: Sequence[object]) -> object:
        """The unrecorded call path (SFI re-enters here with guards on)."""
        if self._takes_ctx:
            return self._func(self._ctx, *args)
        return self._func(*args)

    def _raw_invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        # Hoist the binding check and ctx dispatch out of the loop; the
        # remaining per-call cost is the bare host-callable invocation.
        func = self._func
        if self._takes_ctx:
            ctx = self._ctx
            return [func(ctx, *args) for args in args_list]
        return [func(*args) for args in args_list]

    def invoke(self, args: Sequence[object]) -> object:
        if self.binding is None:
            self.begin_query()
        prof = self.profile
        if prof is None:
            return self._raw_invoke(args)
        started = perf_counter_ns()
        try:
            result = self._raw_invoke(args)
        except BaseException as exc:
            prof.record_error(exc)
            raise
        prof.record_invocations(1, perf_counter_ns() - started)
        return result

    def invoke_batch(self, args_list: Sequence[Sequence[object]]) -> list:
        if self.binding is None:
            self.begin_query()
        prof = self.profile
        if prof is None:
            return self._raw_invoke_batch(args_list)
        started = perf_counter_ns()
        try:
            results = self._raw_invoke_batch(args_list)
        except BaseException as exc:
            prof.record_error(exc)
            raise
        if args_list:
            elapsed = perf_counter_ns() - started
            prof.record_invocations(len(args_list), elapsed)
            if getattr(self.env, "tiering", False):
                # Native designs never promote — host code has no
                # bytecode to specialize — so under tiering they stamp
                # every batch as tier 0: the benchmark's ~1.00x control.
                prof.record_tier0_batch(len(args_list), elapsed)
        return results

    def end_query(self) -> None:
        super().end_query()
        self._ctx = None
