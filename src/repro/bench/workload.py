"""Benchmark workload: the paper's relations and UDFs (Section 5.1).

"In all our experiments, we used three relations of cardinality 10,000.
Each relation has an attribute of type ByteArray ... Relations Rel1,
Rel100, and Rel10000 have byte arrays of size 1, 100, 10000 bytes
respectively in each tuple."

Scaling: 10,000 C++ invocations on a 1998 Sparc20 translate to a *far*
larger absolute workload on a modern machine running Python; the default
cardinality here is 2,000 and every experiment takes the invocation
count as a parameter.  EXPERIMENTS.md records exactly what ran.

Storage choice: the paper passes the ByteArray *by value* into the UDF
(callbacks transfer no data), so the workload keeps byte arrays inline
in the record (page size 16 KiB, LOB threshold above 10,000) — the scan
cost of touching them is then part of the *base* query cost that
calibration subtracts, exactly as in Figure 4.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.designs import Design
from ..core.generic_udf import (
    arith_definition,
    generic_definition,
    noop_definition,
)
from ..database import Database

DEFAULT_CARDINALITY = 2000
DEFAULT_SIZES = (1, 100, 10000)

#: The three designs of the paper's performance study, by their labels.
PAPER_DESIGNS = (
    Design.NATIVE_INTEGRATED,   # "C++"
    Design.NATIVE_ISOLATED,     # "IC++"
    Design.SANDBOX_JIT,         # "JNI"
)

ALL_DESIGNS = tuple(Design)


def pattern_bytes(size: int, seed: int) -> bytes:
    """Deterministic per-row byte arrays (sum is stable for asserts)."""
    out = bytearray(size)
    state = (seed * 2654435761 + 97) & 0xFFFFFFFF
    for index in range(size):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out[index] = (state >> 16) & 0xFF
    return bytes(out)


class BenchmarkWorkload:
    """Owns a database populated with Rel* tables and all UDF designs."""

    def __init__(
        self,
        cardinality: int = DEFAULT_CARDINALITY,
        sizes: Sequence[int] = DEFAULT_SIZES,
        designs: Sequence[Design] = ALL_DESIGNS,
        use_generic: bool = True,
        path: Optional[str] = None,
        batch_size: Optional[int] = None,
        parallelism: Optional[int] = None,
    ):
        self.cardinality = cardinality
        self.sizes = tuple(sizes)
        self.designs = tuple(designs)
        # 16 KiB pages keep even the 10,000-byte arrays inline (see
        # module docstring); the buffer pool is sized to hold the
        # largest relation so repeated sweeps measure CPU, not I/O.
        db_kwargs = {} if batch_size is None else {"batch_size": batch_size}
        if parallelism is not None:
            db_kwargs["parallelism"] = parallelism
        self.db = Database(
            path=path,
            page_size=16384,
            buffer_capacity=4096,
            lob_threshold=12000,
            **db_kwargs,
        )
        self._populate()
        self._register_udfs(use_generic)

    # -- setup -------------------------------------------------------------

    def table_name(self, size: int) -> str:
        return f"rel{size}"

    def _populate(self) -> None:
        for size in self.sizes:
            name = self.table_name(size)
            self.db.execute(
                f"CREATE TABLE {name} (id INT, arr BYTEARRAY)"
            )
            self.db.insert_rows(
                name,
                (
                    (row_id, pattern_bytes(size, row_id))
                    for row_id in range(self.cardinality)
                ),
            )

    def _register_udfs(self, use_generic: bool) -> None:
        self.noop_names: Dict[Design, str] = {}
        self.generic_names: Dict[Design, str] = {}
        self.arith_names: Dict[Design, str] = {}
        for design in self.designs:
            noop = noop_definition(design)
            self.db.register_udf(noop, persist=False)
            self.noop_names[design] = noop.name
            arith = arith_definition(design)
            self.db.register_udf(arith, persist=False)
            self.arith_names[design] = arith.name
            if use_generic:
                generic = generic_definition(design)
                self.db.register_udf(generic, persist=False)
                self.generic_names[design] = generic.name

    # -- queries (Section 5.1's benchmark query template) ----------------------

    def udf_query(
        self,
        size: int,
        udf_name: str,
        invocations: int,
        num_indep: int = 0,
        num_dep: int = 0,
        num_callbacks: int = 0,
    ) -> str:
        """``SELECT UDF(R.ByteArray, ...) FROM Rel* R WHERE <condition>``.

        The WHERE clause is the paper's "restrictive (and inexpensive)
        predicate" controlling how many tuples reach the UDF.
        """
        table = self.table_name(size)
        return (
            f"SELECT {udf_name}(r.arr, {num_indep}, {num_dep}, "
            f"{num_callbacks}) FROM {table} r WHERE r.id < {invocations}"
        )

    def base_query(self, size: int, invocations: int) -> str:
        """Same scan and qualification, no UDF: the Figure 4 baseline."""
        table = self.table_name(size)
        return f"SELECT r.id FROM {table} r WHERE r.id < {invocations}"

    def arith_query(self, size: int, udf_name: str, invocations: int) -> str:
        """The inlining experiment's query: an int UDF over ``id``."""
        table = self.table_name(size)
        return (
            f"SELECT {udf_name}(r.id) FROM {table} r "
            f"WHERE r.id < {invocations}"
        )

    def arith_expr_query(self, size: int, invocations: int) -> str:
        """Native SQL expression equivalent of the ``arith`` UDF."""
        table = self.table_name(size)
        return (
            f"SELECT r.id * 3 + 1 FROM {table} r "
            f"WHERE r.id < {invocations}"
        )

    def expected_generic_result(
        self, row_id: int, size: int, num_indep: int, num_dep: int,
        num_callbacks: int,
    ) -> int:
        """Ground truth for correctness checks inside benchmarks."""
        return num_indep + num_dep * sum(pattern_bytes(size, row_id))

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "BenchmarkWorkload":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
