"""Per-figure experiment definitions (Table 1 and Figures 4-8).

Each ``run_figN`` executes the paper's sweep on a
:class:`~repro.bench.workload.BenchmarkWorkload` and returns an
:class:`~repro.bench.harness.ExperimentResult` whose series carry the
paper's labels (``C++``, ``IC++``, ``JNI``, ...).  Default sweep sizes
are scaled down from the paper's 10,000-invocation runs; every run
records its actual parameters in ``meta``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.designs import Design, design_space
from .harness import ExperimentResult, Timer, measure_udf_cost, time_query
from .workload import PAPER_DESIGNS, BenchmarkWorkload


def run_table1() -> ExperimentResult:
    """Table 1 plus the qualitative security columns of Section 6."""
    result = ExperimentResult(
        experiment="table1",
        title="Design space for server-side UDFs",
        x_label="-",
    )
    result.meta["rows"] = [
        {
            "design": props.design.paper_label,
            "language": props.design.language,
            "process": "isolated" if props.design.is_isolated else "same",
            "crash_contained": props.crash_contained,
            "memory_safe": props.memory_safe,
            "resources_policed": props.resources_policed,
            "portable": props.portable,
            "boundary": props.boundary_cost,
        }
        for props in design_space()
    ]
    return result


def run_fig4(
    workload: BenchmarkWorkload,
    invocation_counts: Sequence[int] = (10, 100, 1000),
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Figure 4 — calibration: table access costs.

    The trivial integrated UDF runs over each relation while the number
    of qualifying tuples varies; the resulting times are the base system
    costs later experiments subtract.
    """
    timer = timer or Timer()
    result = ExperimentResult(
        experiment="fig4",
        title="Calibration: table access costs",
        x_label="# of func calls",
        meta={"invocation_counts": list(invocation_counts)},
    )
    noop = workload.noop_names[Design.NATIVE_INTEGRATED]
    for size in workload.sizes:
        label = f"Rel{size}"
        for count in invocation_counts:
            count = min(count, workload.cardinality)
            sql = workload.udf_query(size, noop, count)
            result.add_point(label, count, time_query(workload, sql, timer))
    return result


def run_fig5(
    workload: BenchmarkWorkload,
    invocations: int = 1000,
    designs: Sequence[Design] = PAPER_DESIGNS,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Figure 5 — calibration: function invocation costs.

    No-op UDFs under each design, bytearray size on the X axis; base
    table-access cost subtracted.
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    result = ExperimentResult(
        experiment="fig5",
        title="Calibration: function invocation costs",
        x_label="byte array size",
        meta={"invocations": invocations},
    )
    base_cache: Dict[Tuple[int, int], float] = {}
    for design in designs:
        label = design.paper_label
        udf = workload.noop_names[design]
        for size in workload.sizes:
            cost = measure_udf_cost(
                workload, size, udf, invocations,
                timer=timer, base_cache=base_cache,
            )
            result.add_point(label, size, cost)
    return result


def run_fig6(
    workload: BenchmarkWorkload,
    invocations: int = 200,
    computation_sweep: Sequence[int] = (0, 100, 1000, 10000),
    designs: Sequence[Design] = PAPER_DESIGNS,
    size: int = 10000,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Figure 6 — effect of (data-independent) computation.

    NumDataIndepComps varies; the paper's finding is that the JNI line
    tracks C++ with a near-constant gap (the JIT executes computation
    competitively).
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    result = ExperimentResult(
        experiment="fig6",
        title="Pure computation",
        x_label="DataIndepComps",
        meta={"invocations": invocations, "bytearray": size},
    )
    base_cache: Dict[Tuple[int, int], float] = {}
    for design in designs:
        label = design.paper_label
        udf = workload.generic_names[design]
        for amount in computation_sweep:
            cost = measure_udf_cost(
                workload, size, udf, invocations,
                num_indep=amount, timer=timer, base_cache=base_cache,
            )
            result.add_point(label, amount, cost)
    return result


def run_fig7(
    workload: BenchmarkWorkload,
    invocations: int = 100,
    passes_sweep: Sequence[int] = (0, 1, 4, 16),
    designs: Sequence[Design] = PAPER_DESIGNS + (Design.NATIVE_SFI,),
    size: int = 10000,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Figure 7 — effect of data access.

    NumDataDepComps varies over the 10,000-byte relation.  Includes the
    bounds-checked native variant (Section 5.4's "second version of the
    C++ UDF"): JNI should stay within a small factor of it.
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    result = ExperimentResult(
        experiment="fig7",
        title="Data access",
        x_label="DataDepComps",
        meta={"invocations": invocations, "bytearray": size},
    )
    base_cache: Dict[Tuple[int, int], float] = {}
    for design in designs:
        label = design.paper_label
        udf = workload.generic_names[design]
        for passes in passes_sweep:
            cost = measure_udf_cost(
                workload, size, udf, invocations,
                num_dep=passes, timer=timer, base_cache=base_cache,
            )
            result.add_point(label, passes, cost)
    return result


DEFAULT_BATCH_SWEEP = (1, 2, 8, 64)


def run_batching(
    workload: BenchmarkWorkload,
    invocations: int = 1000,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SWEEP,
    designs: Sequence[Design] = PAPER_DESIGNS,
    sizes: Optional[Sequence[int]] = None,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Batched execution sweep: batch size × design × bytearray size.

    Fig 5's no-op invocation-cost protocol, re-run at several executor
    batch sizes over the same populated database (``db.batch_size`` is
    mutated between sweeps and restored afterwards).  Base table-access
    cost is measured per batch size too, since the scan itself also runs
    batched.  For the isolated design, one instrumented batch per
    configuration records the shared-memory channel's chunk/message
    counters in ``meta["shm_stats"]``.
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    if sizes is None:
        sizes = workload.sizes
    result = ExperimentResult(
        experiment="batching",
        title="Batched execution: invocation cost vs batch size",
        x_label="batch size",
        meta={
            "invocations": invocations,
            "batch_sizes": list(batch_sizes),
            "sizes": list(sizes),
        },
    )
    shm_stats = {}
    saved = workload.db.batch_size
    try:
        for batch in batch_sizes:
            workload.db.batch_size = batch
            base_cache: Dict[Tuple[int, int], float] = {}
            for design in designs:
                udf = workload.noop_names[design]
                for size in sizes:
                    cost = measure_udf_cost(
                        workload, size, udf, invocations,
                        timer=timer, base_cache=base_cache,
                    )
                    label = f"{design.paper_label} Rel{size}"
                    result.add_point(label, batch, cost)
            if any(d.is_isolated for d in designs):
                for size in sizes:
                    shm_stats[f"batch={batch},Rel{size}"] = (
                        measure_shm_batch_stats(workload, size, batch)
                    )
    finally:
        workload.db.batch_size = saved
    result.meta["shm_stats"] = shm_stats
    return result


def measure_shm_batch_stats(
    workload: BenchmarkWorkload, size: int, batch: int
) -> Dict[str, int]:
    """IPC traffic for one batched no-op invocation round (Design 2).

    Spawns a fresh remote executor (so its buffer is pre-sized for the
    current ``db.batch_size``), sends one batch of ``batch`` argument
    tuples, and returns the server-side channel counters — the
    chunk-per-message ratio shows whether the pre-sized buffer fits the
    batch payload in a single hand-off.
    """
    from ..core.isolated import RemoteExecutor
    from .workload import pattern_bytes

    registry = workload.db.registry
    name = workload.noop_names[Design.NATIVE_ISOLATED]
    definition = registry.get(name)
    executor = RemoteExecutor(definition, workload.db.environment)
    try:
        executor.begin_query()
        args_list = [
            (bytearray(pattern_bytes(size, row)), 0, 0, 0)
            for row in range(batch)
        ]
        executor.invoke_batch(args_list)
        return executor.channel_stats()
    finally:
        executor.close()


#: The paper's four execution designs: C++, IC++, JNI, and the
#: interpreted JNI variant (Section 5's "with the JIT turned off").
INLINING_DESIGNS = (
    Design.NATIVE_INTEGRATED,
    Design.NATIVE_ISOLATED,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
)


def run_inlining(
    workload: BenchmarkWorkload,
    invocations: int = 1000,
    designs: Sequence[Design] = INLINING_DESIGNS,
    sizes: Optional[Sequence[int]] = None,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Froid-style inlining sweep: Fig 5's invocation-cost protocol
    re-run on a pure arithmetic UDF, opaque vs inlined.

    Three kinds of series, all with base table-access cost subtracted:

    * ``SQL expr`` — the equivalent native SQL expression
      (``id * 3 + 1``), the floor the inlined curves should sit on;
    * ``<design> opaque`` — the UDF with ``inlining=False``, which
      retains each design's per-invocation overhead;
    * ``<design> inlined`` — the same query with ``inlining=True``.
      Sandboxed designs collapse onto the SQL-expression line (the
      decompiler lifts the body, so no VM is entered); native designs
      carry opaque host code, refuse with ``impure``, and stay on
      their opaque curve.

    ``meta["inline_status"]`` records the decompiler's verdict per
    design (``inlined`` or the structured refusal).
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    if sizes is None:
        sizes = workload.sizes
    result = ExperimentResult(
        experiment="inlining",
        title="UDF inlining: invocation cost, opaque vs inlined",
        x_label="byte array size",
        meta={"invocations": invocations, "sizes": list(sizes)},
    )
    status = {}
    for design in designs:
        inline = workload.db.registry.get(workload.arith_names[design]).inline
        if hasattr(inline, "expr"):
            status[design.value] = "inlined"
        elif hasattr(inline, "reason"):
            status[design.value] = f"opaque({inline.reason})"
        else:
            status[design.value] = "opaque(call-site)"
    result.meta["inline_status"] = status
    base_cache: Dict[Tuple[int, int], float] = {}

    def base(size: int) -> float:
        key = (size, invocations)
        if key not in base_cache:
            base_cache[key] = time_query(
                workload, workload.base_query(size, invocations), timer
            )
        return base_cache[key]

    saved = workload.db.inlining
    try:
        workload.db.inlining = False
        for size in sizes:
            sql = workload.arith_expr_query(size, invocations)
            cost = max(time_query(workload, sql, timer) - base(size), 0.0)
            result.add_point("SQL expr", size, cost)
        for mode, inlining in (("opaque", False), ("inlined", True)):
            workload.db.inlining = inlining
            for design in designs:
                udf = workload.arith_names[design]
                for size in sizes:
                    sql = workload.arith_query(size, udf, invocations)
                    cost = max(
                        time_query(workload, sql, timer) - base(size), 0.0
                    )
                    label = f"{design.paper_label} {mode}"
                    result.add_point(label, size, cost)
    finally:
        workload.db.inlining = saved
    return result


TIERING_DESIGNS = (
    Design.NATIVE_INTEGRATED,
    Design.SANDBOX_JIT,
    Design.SANDBOX_INTERP,
    Design.SANDBOX_ISOLATED,
)

DEFAULT_TIERING_COUNTS = (100, 1000, 2000)
TIERING_BATCH_SIZE = 64


def run_tiering(
    workload: BenchmarkWorkload,
    invocation_counts: Sequence[int] = DEFAULT_TIERING_COUNTS,
    designs: Sequence[Design] = TIERING_DESIGNS,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Tiered-execution sweep: the arith UDF, tier 0 vs tier 1.

    Fig 5's protocol (base table-access cost subtracted) applied to the
    pure arithmetic UDF over ``Rel1`` at batch size 64, with the number
    of qualifying tuples on the X axis:

    * ``<design> tier0`` — ``tiering=False``: the seed execution paths.
    * ``<design> tier1`` — ``tiering=True`` with ``tier1_threshold=0``,
      warmed before timing so promotion and kernel compilation are paid
      once outside the measurement.  In-process sandboxed designs run
      the type-specialized whole-batch kernel; the native control
      (``C++``) has no bytecode to specialize and must stay ~1.00x.

    Measurements are *interleaved*: each timing round runs base, tier 0,
    and tier 1 back to back (flipping ``db.tiering`` between them) and
    the best round of each wins, so a noisy neighbour slowing the
    machine for a stretch skews all three curves together instead of
    corrupting one mode's entire series.

    ``meta["tier_status"]`` records each design's post-sweep tier state
    (promotions, deopts, tier-1 batches, or the eligibility refusal);
    isolated designs promote inside their worker processes, whose
    executors are per-query, so they report ``worker-local``.
    """
    from time import perf_counter

    timer = timer or Timer()
    size = workload.sizes[0]
    counts = [min(c, workload.cardinality) for c in invocation_counts]
    result = ExperimentResult(
        experiment="tiering",
        title="Tiered execution: arith UDF cost, tier 0 vs tier 1",
        x_label="# of func calls",
        meta={
            "invocation_counts": counts,
            "size": size,
            "batch_size": TIERING_BATCH_SIZE,
            "tier1_threshold": 0,
        },
    )

    db = workload.db
    execute = db.execute

    def once(sql: str) -> float:
        start = perf_counter()
        execute(sql)
        return perf_counter() - start

    saved = (db.tiering, db.tier1_threshold, db.batch_size)
    status: Dict[str, object] = {}
    totals: Dict[str, Dict[str, Dict[int, float]]] = {}
    try:
        db.batch_size = TIERING_BATCH_SIZE
        db.tier1_threshold = 0
        for design in designs:
            udf = workload.arith_names[design]
            per_design = totals.setdefault(
                design.value, {"base": {}, "tier0": {}, "tier1": {}}
            )
            for count in counts:
                sql = workload.arith_query(size, udf, count)
                base_sql = workload.base_query(size, count)
                for __ in range(timer.warmup):
                    execute(base_sql)
                    db.tiering = False
                    execute(sql)
                    db.tiering = True
                    execute(sql)  # promotes + compiles the kernel
                best_base = best0 = best1 = float("inf")
                for __ in range(timer.repeat):
                    best_base = min(best_base, once(base_sql))
                    db.tiering = False
                    best0 = min(best0, once(sql))
                    db.tiering = True
                    best1 = min(best1, once(sql))
                label = design.paper_label
                result.add_point(
                    f"{label} tier0", count, max(best0 - best_base, 0.0)
                )
                result.add_point(
                    f"{label} tier1", count, max(best1 - best_base, 0.0)
                )
                per_design["base"][count] = best_base
                per_design["tier0"][count] = best0
                per_design["tier1"][count] = best1
            executor = db.registry.executor_for_query(udf)
            state = getattr(executor, "_tier", None)
            if state is not None:
                status[design.value] = state.snapshot()
            elif design.is_isolated:
                status[design.value] = "worker-local"
            else:
                status[design.value] = "tier0(native-control)"
    finally:
        db.tiering, db.tier1_threshold, db.batch_size = saved
    result.meta["tier_status"] = status
    # Raw (un-subtracted) end-to-end times: the honest way to state the
    # native control's "~1.00x" — subtracting two nearly-equal scans
    # leaves noise-dominated residuals there.
    result.meta["totals"] = totals
    return result


DEFAULT_PARALLELISM_SWEEP = (1, 2, 4)


def run_parallelism(
    workload: BenchmarkWorkload,
    invocations: int = 1000,
    parallelism_levels: Sequence[int] = DEFAULT_PARALLELISM_SWEEP,
    designs: Sequence[Design] = PAPER_DESIGNS,
    sizes: Optional[Sequence[int]] = None,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Parallel execution sweep: worker count × design × bytearray size.

    Fig 5's no-op invocation-cost protocol re-run at several parallelism
    levels over the same populated database (``db.parallelism`` is
    mutated between sweeps and restored afterwards).  The isolated
    designs shard each ``invoke_batch`` across a worker pool; the
    in-process sandboxes parallelize across Exchange threads when the
    optimizer places an Exchange.  Base table-access cost is measured
    per level — the scan is serial, so its cost should be level-
    independent, and measuring it per level keeps the subtraction
    honest.  ``meta["pool_stats"]`` records the per-worker channel
    counters of one instrumented pooled batch per configuration, and
    ``meta["cpu_count"]`` records the host's core count: on a
    single-core host the sweep measures overhead, not speedup.
    """
    import os

    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    if sizes is None:
        sizes = workload.sizes
    result = ExperimentResult(
        experiment="parallelism",
        title="Parallel execution: invocation cost vs worker count",
        x_label="parallelism",
        meta={
            "invocations": invocations,
            "parallelism_levels": list(parallelism_levels),
            "sizes": list(sizes),
            "cpu_count": os.cpu_count(),
        },
    )
    pool_stats = {}
    saved = workload.db.parallelism
    try:
        for level in parallelism_levels:
            workload.db.parallelism = level
            base_cache: Dict[Tuple[int, int], float] = {}
            for design in designs:
                udf = workload.noop_names[design]
                for size in sizes:
                    cost = measure_udf_cost(
                        workload, size, udf, invocations,
                        timer=timer, base_cache=base_cache,
                    )
                    label = f"{design.paper_label} Rel{size}"
                    result.add_point(label, level, cost)
            if any(d.is_isolated for d in designs):
                for size in sizes:
                    pool_stats[f"parallel={level},Rel{size}"] = (
                        measure_pool_channel_stats(workload, size, level)
                    )
    finally:
        workload.db.parallelism = saved
    result.meta["pool_stats"] = pool_stats
    return result


def measure_pool_channel_stats(
    workload: BenchmarkWorkload, size: int, parallelism: int
) -> Dict[str, object]:
    """IPC traffic for one pooled no-op batch round (Design 2).

    Spawns a fresh remote executor with an explicit pool width, sends
    one 64-tuple batch, and returns the aggregated channel counters —
    ``per_worker`` shows how the batch was sharded (each participating
    worker should log one message pair), the rollup keys stay
    compatible with :func:`measure_shm_batch_stats` consumers.
    """
    from ..core.isolated import RemoteExecutor
    from .workload import pattern_bytes

    registry = workload.db.registry
    name = workload.noop_names[Design.NATIVE_ISOLATED]
    definition = registry.get(name)
    executor = RemoteExecutor(
        definition, workload.db.environment, parallelism=parallelism
    )
    try:
        executor.begin_query()
        args_list = [
            (bytearray(pattern_bytes(size, row)), 0, 0, 0)
            for row in range(64)
        ]
        executor.invoke_batch(args_list)
        return executor.channel_stats()
    finally:
        executor.close()


def run_fig8(
    workload: BenchmarkWorkload,
    invocations: int = 200,
    callback_sweep: Sequence[int] = (0, 1, 10, 50),
    designs: Sequence[Design] = PAPER_DESIGNS,
    size: int = 100,
    timer: Optional[Timer] = None,
) -> ExperimentResult:
    """Figure 8 — effect of callbacks.

    NumCallbacks varies; the functions do no other work.  The isolated
    design pays a process-boundary crossing per callback and should grow
    steeply; the in-process sandbox grows gently.
    """
    timer = timer or Timer()
    invocations = min(invocations, workload.cardinality)
    result = ExperimentResult(
        experiment="fig8",
        title="Callbacks",
        x_label="Callbacks",
        meta={"invocations": invocations, "bytearray": size},
    )
    base_cache: Dict[Tuple[int, int], float] = {}
    for design in designs:
        label = design.paper_label
        udf = workload.generic_names[design]
        for callbacks in callback_sweep:
            cost = measure_udf_cost(
                workload, size, udf, invocations,
                num_callbacks=callbacks, timer=timer, base_cache=base_cache,
            )
            result.add_point(label, callbacks, cost)
    return result


DEFAULT_CLIENT_SWEEP = (1, 2, 4, 8)


def _percentile(samples: Sequence[float], q: float) -> float:
    ordered = sorted(samples)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[index]


def run_server(
    cardinality: int = 2000,
    client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
    statements_per_client: int = 60,
    concurrency: int = 8,
    scan_limit: int = 256,
) -> ExperimentResult:
    """Concurrent-server sweep: wire throughput vs number of clients.

    A read-heavy UDF workload (one sandboxed arithmetic UDF over the
    first ``scan_limit`` rows of a ``cardinality``-row table) is issued
    over real TCP connections against one
    :class:`~repro.server.aserver.AsyncDatabaseServer`.  For each client
    count, every client runs ``statements_per_client`` statements on its
    own thread and connection; the series record whole-sweep throughput
    (statements/second) and client-observed latency percentiles.

    Since every client issues the same SQL text, the sweep also
    exercises the shared plan cache; ``meta["plan_cache_latency"]``
    isolates that effect directly — the server-side latency of the same
    planning-heavy statement with the cache defeated (cleared before
    every execution) vs hitting, medians over repeated runs.

    ``meta["cpu_count"]`` matters: on a single-core host concurrent
    clients time-slice one core, so throughput *cannot* scale and the
    sweep measures multiplexing overhead instead of speedup.
    """
    import os
    import threading
    from statistics import median
    from time import perf_counter

    from ..database import Database
    from ..server.aserver import AsyncDatabaseServer
    from ..server.client import Client

    result = ExperimentResult(
        experiment="server",
        title="Concurrent server: clients vs wire throughput",
        x_label="Clients",
        meta={
            "cardinality": cardinality,
            "statements_per_client": statements_per_client,
            "concurrency": concurrency,
            "scan_limit": scan_limit,
            "cpu_count": os.cpu_count(),
        },
    )

    db = Database()
    db.execute("CREATE TABLE metrics (id INT, v INT)")
    db.insert_rows(
        "metrics", [(i, i % 97) for i in range(cardinality)]
    )
    db.execute(
        "CREATE FUNCTION arith(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX AS "
        "'def arith(x: int) -> int: return x * 3 + 1'"
    )
    sql = (
        f"SELECT count(*), sum(arith(v)) FROM metrics "
        f"WHERE id < {scan_limit}"
    )

    # -- plan-cache latency: miss (cache cleared) vs hit ----------------
    # Measured over a deliberately tiny table so parse/plan/optimize
    # dominates execution; against ``metrics`` the scan would bury the
    # planning cost the cache removes.
    db.snapshots.enable(db)
    db.execute("CREATE TABLE plan_demo (id INT, v INT)")
    db.insert_rows("plan_demo", [(i, i) for i in range(8)])
    plan_sql = (
        "SELECT id, v FROM plan_demo WHERE id < 4 AND v >= 0 "
        "AND id + v < 100 AND v * 2 >= 0 ORDER BY id, v"
    )
    misses, hits = [], []
    for __ in range(25):
        db.plan_cache.clear()
        start = perf_counter()
        db.execute_read(plan_sql)
        misses.append(perf_counter() - start)
    db.execute_read(plan_sql)  # prime
    for __ in range(25):
        start = perf_counter()
        db.execute_read(plan_sql)
        hits.append(perf_counter() - start)
    result.meta["plan_cache_latency"] = {
        "miss_median_s": median(misses),
        "hit_median_s": median(hits),
        "hit_over_miss": median(hits) / median(misses),
    }

    try:
        with AsyncDatabaseServer(db, concurrency=concurrency) as server:
            for clients in client_counts:
                latencies: list = []
                errors: list = []
                lock = threading.Lock()
                barrier = threading.Barrier(clients + 1)

                def worker():
                    mine = []
                    try:
                        with Client(server.host, server.port) as conn:
                            conn.execute(sql)  # connection warm-up
                            barrier.wait()
                            for __ in range(statements_per_client):
                                start = perf_counter()
                                conn.execute(sql)
                                mine.append(perf_counter() - start)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                    with lock:
                        latencies.extend(mine)

                threads = [
                    threading.Thread(target=worker)
                    for __ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                sweep_start = perf_counter()
                for thread in threads:
                    thread.join()
                elapsed = perf_counter() - sweep_start
                if errors:
                    raise errors[0]
                total = clients * statements_per_client
                result.add_point(
                    "throughput stmt/s", clients, total / elapsed
                )
                result.add_point(
                    "p50 latency s", clients, _percentile(latencies, 0.50)
                )
                result.add_point(
                    "p95 latency s", clients, _percentile(latencies, 0.95)
                )
                result.add_point(
                    "p99 latency s", clients, _percentile(latencies, 0.99)
                )
            stats = server.stats_snapshot()
            result.meta["plan_cache"] = stats["plan_cache"]
            result.meta["snapshots"] = stats["snapshots"]
            result.meta["admission"] = stats["admission"]
    finally:
        db.close()
    return result
