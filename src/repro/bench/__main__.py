"""Run the full reproduction suite: ``python -m repro.bench``.

Prints every table/figure of the paper in text form and a shape-check
summary comparing the measured trends against the paper's claims.
"""

from __future__ import annotations

import argparse
import sys

from ..core.designs import Design
from .figures import (
    measure_pool_channel_stats,
    run_batching,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_inlining,
    run_parallelism,
    run_server,
    run_table1,
    run_tiering,
)
from .harness import Timer
from .report import render
from .workload import BenchmarkWorkload


def _observability_stats(parallelism: int) -> dict:
    """A small metrics-enabled run's ``db.stats()`` dump.

    Registers one sandboxed UDF over a tiny table and runs a single
    SELECT, so ``--stats`` shows the shape of the per-UDF and
    per-operator metrics alongside the raw channel counters.
    """
    from ..database import Database

    with Database(metrics=True, parallelism=parallelism) as db:
        db.execute("CREATE TABLE obs_demo (id INT, v INT)")
        for value in range(32):
            db.execute(f"INSERT INTO obs_demo VALUES ({value}, {value})")
        db.execute(
            "CREATE FUNCTION obs_triple(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS "
            "'def obs_triple(x: int) -> int: return 3 * x'"
        )
        db.query("SELECT obs_triple(v) FROM obs_demo WHERE id <= 15")
        return db.stats()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "--cardinality", type=int, default=2000,
        help="relation cardinality (paper: 10000)",
    )
    parser.add_argument(
        "--invocations", type=int, default=None,
        help="override per-figure invocation counts",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions"
    )
    parser.add_argument(
        "--figures", type=str, default="table1,4,5,6,7,8",
        help="comma-separated subset, e.g. '5,8', 'batching', 'inlining', "
        "'tiering', or 'server'",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="executor batch size (rows per operator batch; default 64, "
        "1 is tuple-at-a-time)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=None,
        help="worker fan-out for UDF execution (pool width for isolated "
        "designs, Exchange width for in-process ones; default 1 is "
        "serial)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the isolated design's per-worker channel counters "
        "for one pooled batch plus a metrics-enabled run's db.stats() "
        "dump, then exit",
    )
    args = parser.parse_args(argv)
    wanted = {piece.strip() for piece in args.figures.split(",")}
    timer = Timer(repeat=args.repeat)

    if args.stats:
        # Per-worker shared-memory channel counters for one pooled
        # batch: the quickest way to see how a batch was sharded.
        import json

        level = args.parallelism or 1
        with BenchmarkWorkload(
            cardinality=64, sizes=(100,),
            designs=(Design.NATIVE_ISOLATED,), use_generic=False,
        ) as workload:
            stats = measure_pool_channel_stats(workload, 100, level)
        print(json.dumps(stats, indent=2, sort_keys=True))
        print(json.dumps(_observability_stats(level), indent=2,
                         sort_keys=True))
        return 0

    if "table1" in wanted:
        print(render(run_table1()))
        print()

    if "server" in wanted:
        # The concurrent-server sweep builds its own database and TCP
        # server rather than using the per-design workload below.
        result = run_server(cardinality=args.cardinality)
        print(render(result))
        print()

    numeric = wanted & {
        "4", "5", "6", "7", "8", "batching", "parallelism", "inlining",
        "tiering",
    }
    if not numeric:
        return 0

    print(
        f"building workload: cardinality={args.cardinality}, "
        f"sizes=(1, 100, 10000)"
        + (
            f", batch_size={args.batch_size}"
            if args.batch_size is not None else ""
        )
        + (
            f", parallelism={args.parallelism}"
            if args.parallelism is not None else ""
        )
        + " ...",
        flush=True,
    )
    with BenchmarkWorkload(
        cardinality=args.cardinality, batch_size=args.batch_size,
        parallelism=args.parallelism,
    ) as workload:
        kwargs = {}
        if args.invocations:
            kwargs["invocations"] = args.invocations
        if "4" in wanted:
            print(render(run_fig4(workload, timer=timer)))
            print()
        if "5" in wanted:
            result = run_fig5(workload, timer=timer, **kwargs)
            print(render(result))
            print()
        if "6" in wanted:
            result = run_fig6(workload, timer=timer, **kwargs)
            print(render(result))
            print(render(result.relative_to(Design.NATIVE_INTEGRATED.paper_label)))
            print()
        if "7" in wanted:
            result = run_fig7(workload, timer=timer, **kwargs)
            print(render(result))
            print(render(result.relative_to(Design.NATIVE_INTEGRATED.paper_label)))
            print()
        if "8" in wanted:
            result = run_fig8(workload, timer=timer, **kwargs)
            print(render(result))
            print(render(result.relative_to(Design.NATIVE_INTEGRATED.paper_label)))
            print()
        if "batching" in wanted:
            result = run_batching(workload, timer=timer, **kwargs)
            print(render(result))
            print()
        if "parallelism" in wanted:
            result = run_parallelism(workload, timer=timer, **kwargs)
            print(render(result))
            print()
        if "inlining" in wanted:
            result = run_inlining(workload, timer=timer, **kwargs)
            print(render(result))
            print()
        if "tiering" in wanted:
            tier_kwargs = {}
            if args.invocations:
                tier_kwargs["invocation_counts"] = (args.invocations,)
            result = run_tiering(workload, timer=timer, **tier_kwargs)
            print(render(result))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
