"""Paper-style text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, List

from .harness import ExperimentResult


def render(result: ExperimentResult) -> str:
    """One experiment as an aligned text table (x down, series across)."""
    lines: List[str] = []
    lines.append(f"== {result.experiment}: {result.title} ==")
    if result.meta:
        meta = ", ".join(
            f"{key}={value}" for key, value in result.meta.items()
            if key != "rows"
        )
        if meta:
            lines.append(f"   [{meta}]")
    if "rows" in result.meta:  # Table 1 style
        rows = result.meta["rows"]
        headers = list(rows[0].keys())
        widths = [
            max(len(str(h)), max(len(str(r[h])) for r in rows))
            for h in headers
        ]
        lines.append(
            "  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        for row in rows:
            lines.append(
                "  "
                + "  ".join(
                    str(row[h]).ljust(w) for h, w in zip(headers, widths)
                )
            )
        return "\n".join(lines)

    labels = list(result.series.keys())
    xs: List[float] = sorted(
        {x for points in result.series.values() for x, __ in points}
    )
    by_label = {
        label: dict(points) for label, points in result.series.items()
    }
    header = [result.x_label.rjust(16)] + [label.rjust(12) for label in labels]
    lines.append(" ".join(header))
    for x in xs:
        cells = [f"{_fmt_x(x):>16}"]
        for label in labels:
            value = by_label[label].get(x)
            cells.append(f"{value:12.4f}" if value is not None else " " * 12)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_all(results: Iterable[ExperimentResult]) -> str:
    return "\n\n".join(render(result) for result in results)


def _fmt_x(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.3g}"
