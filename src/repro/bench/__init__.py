"""Benchmark harness regenerating every table and figure of the paper.

Run everything (prints paper-style series)::

    python -m repro.bench            # scaled-down default workload
    python -m repro.bench --scale 5  # closer to the paper's 10,000 rows
"""

from .figures import (
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_inlining,
    run_table1,
)
from .harness import ExperimentResult, Timer
from .workload import BenchmarkWorkload

__all__ = [
    "BenchmarkWorkload",
    "ExperimentResult",
    "Timer",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_inlining",
    "run_table1",
]
