"""Measurement harness.

The paper's method (Section 5.2): measure the full query response time,
separately measure the base cost of scanning and qualifying the same
tuples with a trivial UDF, and subtract, so the figures isolate the cost
attributable to UDF execution.  :class:`Timer` and
:func:`measure_udf_cost` implement exactly that protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .workload import BenchmarkWorkload


class Timer:
    """Best-of-N wall-clock timing for a nullary callable."""

    def __init__(self, repeat: int = 3, warmup: int = 1):
        self.repeat = repeat
        self.warmup = warmup

    def time(self, fn: Callable[[], object]) -> float:
        for __ in range(self.warmup):
            fn()
        best = float("inf")
        for __ in range(self.repeat):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        return best


@dataclass
class ExperimentResult:
    """One figure/table worth of measurements.

    ``series`` maps a line label (e.g. ``"JNI"``) to ``[(x, seconds)]``
    points, matching the paper's log-log plots; ``meta`` records the
    scale the experiment actually ran at.
    """

    experiment: str
    title: str
    x_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def add_point(self, label: str, x: float, seconds: float) -> None:
        self.series.setdefault(label, []).append((x, seconds))

    def relative_to(self, reference_label: str) -> "ExperimentResult":
        """The paper's lower panels: every series divided by a reference."""
        relative = ExperimentResult(
            experiment=self.experiment + "-relative",
            title=f"{self.title} (relative to {reference_label})",
            x_label=self.x_label,
            meta=dict(self.meta),
        )
        reference = dict(self.series[reference_label])
        for label, points in self.series.items():
            for x, seconds in points:
                base = reference.get(x)
                if base and base > 0:
                    relative.add_point(label, x, seconds / base)
        return relative


def time_query(
    workload: BenchmarkWorkload, sql: str, timer: Optional[Timer] = None
) -> float:
    timer = timer or Timer()
    return timer.time(lambda: workload.db.execute(sql))


def measure_udf_cost(
    workload: BenchmarkWorkload,
    size: int,
    udf_name: str,
    invocations: int,
    num_indep: int = 0,
    num_dep: int = 0,
    num_callbacks: int = 0,
    timer: Optional[Timer] = None,
    base_cache: Optional[Dict[Tuple[int, int], float]] = None,
) -> float:
    """Query time minus the base (no-UDF) time for the same tuples.

    ``base_cache`` lets a sweep reuse base measurements across designs,
    as the paper does ("these numbers represent the basic system costs
    that we subtract from the later measured timings").
    """
    timer = timer or Timer()
    sql = workload.udf_query(
        size, udf_name, invocations, num_indep, num_dep, num_callbacks
    )
    total = time_query(workload, sql, timer)
    key = (size, invocations)
    if base_cache is not None and key in base_cache:
        base = base_cache[key]
    else:
        base = time_query(workload, workload.base_query(size, invocations), timer)
        if base_cache is not None:
            base_cache[key] = base
    return max(total - base, 0.0)
