"""repro: reproduction of *Secure and Portable Database Extensibility*
(Godfrey, Mayr, Seshadri, von Eicken — SIGMOD 1998).

A PREDATOR-style object-relational database with user-defined functions
executable under all of the paper's designs:

* **Design 1** — native code inside the server process (fast, unsafe);
* **Design 1 + SFI** — native code behind guarded buffers;
* **Design 2** — native code in an isolated executor process talking
  through shared memory and semaphores;
* **Design 3** — sandboxed code on **JaguarVM** (bytecode verifier,
  class-loader namespaces, security manager, thread groups, CPU/memory
  quotas, and a JIT) inside the server process;
* **Design 4** — JaguarVM inside the isolated executor.

Quick start::

    from repro import Database

    db = Database()                       # in-memory; Database(path) persists
    db.execute("CREATE TABLE t (id INT)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    db.execute(
        "CREATE FUNCTION sq(int) RETURNS int LANGUAGE JAGUAR "
        "DESIGN SANDBOX AS 'def sq(x: int) -> int: return x * x'"
    )
    print(db.query("SELECT sq(id) FROM t"))
"""

from .core.callbacks import CallbackBroker
from .core.designs import Design, design_space
from .core.udf import CostHints, UDFDefinition, UDFSignature
from .database import Database
from .errors import ReproError
from .server.client import Client, LocalUDFHarness
from .server.server import DatabaseServer
from .vm.machine import JaguarVM

__version__ = "1.0.0"

__all__ = [
    "CallbackBroker",
    "Client",
    "CostHints",
    "Database",
    "DatabaseServer",
    "Design",
    "JaguarVM",
    "LocalUDFHarness",
    "ReproError",
    "UDFDefinition",
    "UDFSignature",
    "design_space",
    "__version__",
]
