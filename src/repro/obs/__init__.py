"""Runtime observability: metrics, per-query profiles, adaptive feedback.

Three consumers sit on top of this package:

* ``EXPLAIN ANALYZE`` — executes the query under a forced
  :class:`~repro.obs.profile.QueryProfile` and renders actual rows,
  time, and per-UDF profiles next to the optimizer's estimates;
* ``db.stats()`` / ``python -m repro.bench --stats`` — the cumulative
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot;
* the adaptive cost pass — observed per-call UDF cost and predicate
  selectivity (:class:`~repro.obs.adaptive.AdaptiveFeedback`) override
  static :class:`~repro.core.udf.CostHints` once trusted.

All of it defaults off; see :class:`~repro.obs.profile.Observability`.
"""

from .adaptive import MIN_CALLS, MIN_ROWS, AdaptiveFeedback
from .metrics import Counter, Histogram, MetricsRegistry, Span
from .profile import (
    Observability,
    OperatorStats,
    PredicateProbe,
    QueryProfile,
    UDFProfile,
)

__all__ = [
    "AdaptiveFeedback",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MIN_CALLS",
    "MIN_ROWS",
    "Observability",
    "OperatorStats",
    "PredicateProbe",
    "QueryProfile",
    "Span",
    "UDFProfile",
]
