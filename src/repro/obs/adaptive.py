"""Adaptive cost feedback: observed UDF cost and predicate selectivity.

The optimizer plans from static :class:`~repro.core.udf.CostHints`
(declared at CREATE FUNCTION or derived from bytecode).  Those hints can
be *wrong* — the paper itself costs the designs by measuring them.  This
store accumulates what execution actually observed:

* per-UDF mean wall time per call, converted to the optimizer's
  abstract cost units via the calibration **1 cost unit = 1 microsecond
  of wall time** (a cheap built-in predicate costs ~1 unit = ~1 us of
  interpreted Python, and the Exchange threshold of 50 units matches
  the ~50 us thread hand-off break-even measured in PR 4);
* per-predicate observed selectivity, keyed by the predicate's rendered
  SQL text, counted over the rows the predicate actually saw.

Overrides only engage once enough evidence exists (``MIN_CALLS`` calls
for cost, ``MIN_ROWS`` input rows for selectivity) so one unlucky
invocation cannot flip a plan.  ``Database(adaptive=True)`` opts in;
the default leaves planning fully static and seed-identical.

Entries are mutable objects handed out once and updated with attribute
arithmetic — the same pre-bound-handle discipline as the metrics
registry, so the execution hot path never does a dict lookup per row.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Observed per-call cost overrides the static hint only after this many
#: recorded invocations.
MIN_CALLS = 32

#: Observed selectivity overrides the static estimate only after the
#: predicate has been evaluated over this many input rows.
MIN_ROWS = 64

#: Calibration between wall time and the optimizer's abstract cost
#: units: 1 unit per microsecond.
NS_PER_COST_UNIT = 1000.0


class UDFCostEntry:
    """Running (calls, total wall ns) for one UDF."""

    __slots__ = ("calls", "total_ns")

    def __init__(self):
        self.calls = 0
        self.total_ns = 0

    def record(self, calls: int, elapsed_ns: int) -> None:
        self.calls += calls
        self.total_ns += elapsed_ns

    @property
    def mean_cost(self) -> Optional[float]:
        """Mean per-call cost in abstract units (us), or None if empty."""
        if self.calls == 0:
            return None
        return self.total_ns / self.calls / NS_PER_COST_UNIT


class SelectivityEntry:
    """Running (rows seen, rows passed) for one predicate."""

    __slots__ = ("rows_in", "rows_true")

    def __init__(self):
        self.rows_in = 0
        self.rows_true = 0

    def record(self, rows_in: int, rows_true: int) -> None:
        self.rows_in += rows_in
        self.rows_true += rows_true

    @property
    def selectivity(self) -> Optional[float]:
        if self.rows_in == 0:
            return None
        return self.rows_true / self.rows_in


class AdaptiveFeedback:
    """Per-database observed statistics feeding the cost oracle.

    Observations from query N adjust the plan of query N+1: the oracle
    consults :meth:`observed_cost` / :meth:`observed_selectivity` at
    planning time, and both return ``None`` until the evidence
    thresholds are met, leaving the static estimate in charge.
    """

    def __init__(self, min_calls: int = MIN_CALLS, min_rows: int = MIN_ROWS):
        self.min_calls = min_calls
        self.min_rows = min_rows
        self._udfs: Dict[str, UDFCostEntry] = {}
        self._predicates: Dict[str, SelectivityEntry] = {}

    # -- recording (pre-bound entry handles) ------------------------------

    def udf_entry(self, name: str) -> UDFCostEntry:
        entry = self._udfs.get(name)
        if entry is None:
            entry = UDFCostEntry()
            self._udfs[name] = entry
        return entry

    def predicate_entry(self, key: str) -> SelectivityEntry:
        entry = self._predicates.get(key)
        if entry is None:
            entry = SelectivityEntry()
            self._predicates[key] = entry
        return entry

    # -- planning-time queries --------------------------------------------

    def observed_cost(self, name: str) -> Optional[float]:
        """Mean observed per-call cost (abstract units), once trusted."""
        entry = self._udfs.get(name)
        if entry is None or entry.calls < self.min_calls:
            return None
        return entry.mean_cost

    def observed_selectivity(self, key: str) -> Optional[float]:
        """Observed pass fraction for a predicate, once trusted."""
        entry = self._predicates.get(key)
        if entry is None or entry.rows_in < self.min_rows:
            return None
        return entry.selectivity

    def snapshot(self) -> dict:
        """JSON-able dump for ``db.stats()``."""
        return {
            "udfs": {
                name: {
                    "calls": entry.calls,
                    "total_ns": entry.total_ns,
                    "mean_cost": entry.mean_cost,
                    "trusted": entry.calls >= self.min_calls,
                }
                for name, entry in sorted(self._udfs.items())
            },
            "predicates": {
                key: {
                    "rows_in": entry.rows_in,
                    "rows_true": entry.rows_true,
                    "selectivity": entry.selectivity,
                    "trusted": entry.rows_in >= self.min_rows,
                }
                for key, entry in sorted(self._predicates.items())
            },
        }
