"""Process-local metrics primitives: counters, histograms, span timers.

The registry is the single allocation point: callers ask it for a named
:class:`Counter` or :class:`Histogram` *once* (per query, per UDF, per
operator) and then update the returned handle directly — attribute
arithmetic on a pre-bound object, never a per-row dict lookup.  That is
the "allocation-light hot path" contract the executors rely on: with
observability off they skip even the handle lookup, and with it on the
per-batch cost is one ``perf_counter_ns`` pair plus a few attribute
increments.

Histograms keep exact aggregate moments (count/sum/min/max) plus a
bounded sample buffer for quantiles.  The buffer is a deterministic
ring: once ``sample_cap`` observations have been made, new samples
overwrite the oldest, so quantiles reflect the most recent window and
memory stays bounded no matter how long the process runs.  Quantiles
use the nearest-rank definition — for sample sets under the cap they
are exact, which is what the accuracy tests pin down.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: Ring-buffer size for histogram quantile samples.  4096 recent samples
#: give stable p99s while bounding memory at a few tens of KB per
#: histogram.
DEFAULT_SAMPLE_CAP = 4096


class Counter:
    """A monotonically growing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Aggregate moments plus a bounded sample ring for quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_cap", "_next")

    def __init__(self, name: str, sample_cap: int = DEFAULT_SAMPLE_CAP):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._cap = max(1, sample_cap)
        self._next = 0  # ring write position once the buffer is full

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        samples = self._samples
        if len(samples) < self._cap:
            samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._cap

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples.

        Exact while fewer than ``sample_cap`` values have been observed;
        afterwards it is the quantile of the most recent window.
        """
        samples = self._samples
        if not samples:
            return None
        ordered = sorted(samples)
        # Integer ceil of q*n without float-rounding surprises at the
        # common q values (0.5, 0.95, 0.99).
        rank = min(len(ordered), max(1, _ceil_rank(q, len(ordered))))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """JSON-able aggregate view: moments plus p50/p95/p99."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def _ceil_rank(q: float, n: int) -> int:
    """ceil(q * n) computed in integers (q given to 3 decimal places)."""
    q_milli = int(round(q * 1000))
    return -(-q_milli * n // 1000)


class Span:
    """A context-managed wall-time measurement feeding a histogram."""

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start = 0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.histogram.observe(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    One registry per database (cumulative ``db.stats()``) plus one per
    ``EXPLAIN ANALYZE`` run (so the rendered numbers are that query's
    own).  ``snapshot()`` is the JSON dump the bench harness prints.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(
        self, name: str, sample_cap: int = DEFAULT_SAMPLE_CAP
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, sample_cap=sample_cap)
            self._histograms[name] = histogram
        return histogram

    def span(self, name: str) -> Span:
        """``with registry.span("phase"):`` — time a block into a histogram."""
        return Span(self.histogram(name))

    def snapshot(self) -> dict:
        """JSON-able dump of every metric (histograms as summaries)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }
