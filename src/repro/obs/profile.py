"""Per-query profiles: what one query's execution actually did.

A :class:`QueryProfile` is created by the statement executor when
observability is collecting (``Database(metrics=True)``,
``Database(adaptive=True)``, or an ``EXPLAIN ANALYZE``) and threaded
through every layer:

* each per-query UDF executor gets a pre-bound :class:`UDFProfile`
  keyed by (function, design) — invocation wall time, batch sizes,
  fuel/heap consumed, crash/refusal counts, and (for the isolated
  design) pool queue-wait and shm round-trip histograms;
* each physical operator gets an :class:`OperatorStats` recording rows
  and batches produced and cumulative (inclusive) wall time, keyed by
  the logical plan node so ``EXPLAIN ANALYZE`` can annotate the plan;
* each compiled predicate gets a :class:`PredicateProbe` counting rows
  in/out for the adaptive selectivity store.

Everything is pre-bound at query setup: the execution hot path updates
plain attributes on objects it already holds.  With observability off no
profile exists and every instrumentation site is a single ``is None``
branch per batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ResourceExhausted, UDFCrashed
from .adaptive import AdaptiveFeedback
from .metrics import MetricsRegistry


class UDFProfile:
    """Pre-bound per-(function, design) instrumentation handles."""

    __slots__ = ("name", "design", "calls", "batches", "total_ns",
                 "invoke_ns", "batch_rows", "fuel_used", "heap_used",
                 "crashes", "refusals", "queue_wait_ns", "round_trip_ns",
                 "promotions", "deopts", "tier1_batches",
                 "tier0_invoke_ns", "tier1_invoke_ns", "tier_state",
                 "_adaptive_entry")

    def __init__(
        self,
        name: str,
        design: str,
        registry: MetricsRegistry,
        adaptive: Optional[AdaptiveFeedback],
    ):
        self.name = name
        self.design = design
        prefix = f"udf.{name}.{design}"
        self.calls = registry.counter(f"{prefix}.calls")
        self.batches = registry.counter(f"{prefix}.batches")
        self.total_ns = registry.counter(f"{prefix}.total_ns")
        #: Per-invocation wall time: one sample per batch (the batch's
        #: mean per call), exact at batch size 1.
        self.invoke_ns = registry.histogram(f"{prefix}.invoke_ns")
        self.batch_rows = registry.histogram(f"{prefix}.batch_rows")
        self.fuel_used = registry.counter(f"{prefix}.fuel_used")
        self.heap_used = registry.counter(f"{prefix}.heap_used")
        self.crashes = registry.counter(f"{prefix}.crashes")
        self.refusals = registry.counter(f"{prefix}.refusals")
        #: Isolated design only: wait for an idle pool worker, and the
        #: send-to-result shm round trip, per dispatch.
        self.queue_wait_ns = registry.histogram(f"{prefix}.queue_wait_ns")
        self.round_trip_ns = registry.histogram(f"{prefix}.round_trip_ns")
        #: Tiered execution (``Database(tiering=True)``).  The event
        #: counters are keyed per *UDF* (no design segment) — the
        #: ``db.stats()`` contract is ``udf.<name>.tier1_batches`` and
        #: ``udf.<name>.deopts`` — while the per-tier latency histograms
        #: keep the (name, design) prefix like every other timing.
        self.promotions = registry.counter(f"udf.{name}.promotions")
        self.deopts = registry.counter(f"udf.{name}.deopts")
        self.tier1_batches = registry.counter(f"udf.{name}.tier1_batches")
        self.tier0_invoke_ns = registry.histogram(f"{prefix}.tier0_invoke_ns")
        self.tier1_invoke_ns = registry.histogram(f"{prefix}.tier1_invoke_ns")
        #: Live :class:`~repro.vm.tier.TierState` (or a remote mirror)
        #: bound by the executor, so EXPLAIN ANALYZE renders lifetime
        #: promotion/deopt numbers, not just this query's deltas.
        self.tier_state = None
        self._adaptive_entry = (
            adaptive.udf_entry(name) if adaptive is not None else None
        )

    def record_invocations(self, count: int, elapsed_ns: int) -> None:
        """One executed batch of ``count`` calls taking ``elapsed_ns``."""
        self.calls.inc(count)
        self.batches.inc(1)
        self.total_ns.inc(elapsed_ns)
        self.invoke_ns.observe(elapsed_ns / count)
        self.batch_rows.observe(count)
        if self._adaptive_entry is not None:
            self._adaptive_entry.record(count, elapsed_ns)

    def record_resources(self, fuel: int, heap: int) -> None:
        self.fuel_used.inc(fuel)
        self.heap_used.inc(heap)

    def record_error(self, exc: BaseException) -> None:
        if isinstance(exc, UDFCrashed):
            self.crashes.inc(1)
        elif isinstance(exc, ResourceExhausted):
            self.refusals.inc(1)

    # -- tiered execution --------------------------------------------------

    def bind_tier(self, state) -> None:
        """Attach the executor's live tier state for EXPLAIN rendering."""
        self.tier_state = state

    def record_promotion(self) -> None:
        self.promotions.inc(1)

    def record_tier_batch(
        self, count: int, elapsed_ns: int, deopted: bool
    ) -> None:
        """One batch attempted on tier 1 (clean, or deopted mid-batch)."""
        if deopted:
            self.deopts.inc(1)
        else:
            self.tier1_batches.inc(1)
            if count and elapsed_ns > 0:
                self.tier1_invoke_ns.observe(elapsed_ns / count)

    def record_tier0_batch(self, count: int, elapsed_ns: int) -> None:
        """One batch executed on tier 0 while tiering is enabled."""
        if count and elapsed_ns > 0:
            self.tier0_invoke_ns.observe(elapsed_ns / count)

    def tier_summary(self) -> dict:
        """Tier numbers for EXPLAIN: lifetime state when bound, else
        this profile's own counters."""
        state = self.tier_state
        if state is not None:
            return {
                "tier": state.tier,
                "promotions": state.promotions,
                "deopts": state.deopts,
                "tier1_batches": state.tier1_batches,
            }
        return {
            "tier": 0,
            "promotions": self.promotions.value,
            "deopts": self.deopts.value,
            "tier1_batches": self.tier1_batches.value,
        }

    def summary(self) -> dict:
        return {
            "name": self.name,
            "design": self.design,
            "calls": self.calls.value,
            "batches": self.batches.value,
            "total_ns": self.total_ns.value,
            "invoke_ns": self.invoke_ns.summary(),
            "batch_rows": self.batch_rows.summary(),
            "fuel_used": self.fuel_used.value,
            "heap_used": self.heap_used.value,
            "crashes": self.crashes.value,
            "refusals": self.refusals.value,
            "queue_wait_ns": self.queue_wait_ns.summary(),
            "round_trip_ns": self.round_trip_ns.summary(),
            "tier0_invoke_ns": self.tier0_invoke_ns.summary(),
            "tier1_invoke_ns": self.tier1_invoke_ns.summary(),
            **self.tier_summary(),
        }


class OperatorStats:
    """Rows/batches produced and cumulative inclusive wall time."""

    __slots__ = ("label", "rows", "batches", "time_ns")

    def __init__(self, label: str):
        self.label = label
        self.rows = 0
        self.batches = 0
        self.time_ns = 0


class PredicateProbe:
    """Wraps one compiled conjunct, counting rows in and rows passing.

    Transparent to evaluation: the scalar path delegates to the inner
    closure; the batch path goes through
    :func:`~repro.sql.expressions.eval_batch` on the inner closure, so
    UDF call-site batching, memoization, and NULL semantics are exactly
    what they were without the probe.
    """

    __slots__ = ("fn", "entry")

    def __init__(self, fn, entry):
        self.fn = fn
        self.entry = entry

    def __call__(self, row):
        value = self.fn(row)
        entry = self.entry
        entry.rows_in += 1
        if value is True:
            entry.rows_true += 1
        return value

    def eval_batch(self, rows: Sequence[Sequence[object]]) -> List[object]:
        from ..sql.expressions import eval_batch

        values = eval_batch(self.fn, rows)
        passed = 0
        for value in values:
            if value is True:
                passed += 1
        self.entry.record(len(values), passed)
        return values


class QueryProfile:
    """Everything observed while executing one query."""

    def __init__(
        self,
        registry: MetricsRegistry,
        adaptive: Optional[AdaptiveFeedback] = None,
        track_operators: bool = True,
    ):
        self.registry = registry
        self.adaptive = adaptive
        self.track_operators = track_operators
        self.udfs: Dict[Tuple[str, str], UDFProfile] = {}
        self.inlined_udfs: Dict[str, object] = {}
        self._operators: Dict[int, OperatorStats] = {}
        self._operator_order: List[OperatorStats] = []

    # -- UDF layer --------------------------------------------------------

    def udf(self, name: str, design: str) -> UDFProfile:
        key = (name, design)
        profile = self.udfs.get(key)
        if profile is None:
            profile = UDFProfile(name, design, self.registry, self.adaptive)
            self.udfs[key] = profile
        return profile

    def inlined(self, name: str):
        """Counter of rows an inlined (former) call site evaluated.

        Deliberately NOT a :class:`UDFProfile` and NOT adaptive-fed: an
        inlined body is native SQL evaluation, so counting it as UDF
        ``calls`` would double-book work the VM never did, and feeding
        its (near-zero) timings into the adaptive store would corrupt
        the observed per-call cost of the designs that still execute
        the UDF for real.
        """
        counter = self.inlined_udfs.get(name)
        if counter is None:
            counter = self.registry.counter(f"udf.{name}.inlined_calls")
            self.inlined_udfs[name] = counter
        return counter

    # -- operator layer ---------------------------------------------------

    def operator(self, node: object, label: str) -> OperatorStats:
        """Stats slot for the physical operator built from ``node``.

        Keyed by the logical plan node's identity so ``EXPLAIN ANALYZE``
        can line annotations up with the rendered plan.
        """
        stats = self._operators.get(id(node))
        if stats is None:
            stats = OperatorStats(label)
            self._operators[id(node)] = stats
            self._operator_order.append(stats)
        return stats

    def operator_stats(self, node: object) -> Optional[OperatorStats]:
        return self._operators.get(id(node))

    # -- predicate layer --------------------------------------------------

    @property
    def wants_selectivity(self) -> bool:
        return self.adaptive is not None

    def predicate_probe(self, key: str, fn):
        return PredicateProbe(fn, self.adaptive.predicate_entry(key))

    # -- teardown ---------------------------------------------------------

    def finish(self) -> None:
        """Fold per-operator totals into the registry as counters."""
        registry = self.registry
        for stats in self._operator_order:
            prefix = f"op.{stats.label}"
            registry.counter(f"{prefix}.rows").inc(stats.rows)
            registry.counter(f"{prefix}.batches").inc(stats.batches)
            registry.counter(f"{prefix}.time_ns").inc(stats.time_ns)


class Observability:
    """Database-level observability switchboard.

    ``metrics`` turns on cumulative collection into :attr:`registry`
    (surfaced by ``db.stats()``); ``adaptive`` turns on the feedback
    store the optimizer consults (and implies collection).  Both off —
    the default — means :meth:`query_profile` returns ``None`` and the
    engine takes its seed code paths untouched.
    """

    def __init__(self, metrics: bool = False, adaptive: bool = False):
        self.enabled = bool(metrics)
        self.registry = MetricsRegistry() if metrics else None
        self.adaptive = AdaptiveFeedback() if adaptive else None

    @property
    def collecting(self) -> bool:
        return self.enabled or self.adaptive is not None

    def query_profile(self, force: bool = False) -> Optional[QueryProfile]:
        """A profile for one query, or ``None`` when nothing collects.

        ``force`` (EXPLAIN ANALYZE) always profiles, into a private
        registry so the rendered numbers are that one run's — adaptive
        feedback still accumulates, since the query really executed.
        Operator wrapping is skipped for adaptive-only profiles: the
        feedback store needs UDF costs and predicate counts, not
        per-operator row totals.
        """
        if force:
            return QueryProfile(MetricsRegistry(), self.adaptive)
        if self.enabled:
            return QueryProfile(self.registry, self.adaptive)
        if self.adaptive is not None:
            return QueryProfile(
                MetricsRegistry(), self.adaptive, track_operators=False
            )
        return None

    def stats(self) -> dict:
        """The ``db.stats()`` JSON dump."""
        return {
            "metrics": (
                self.registry.snapshot() if self.registry is not None else None
            ),
            "adaptive": (
                self.adaptive.snapshot() if self.adaptive is not None else None
            ),
        }
