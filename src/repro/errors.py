"""Exception hierarchy for the repro package.

The hierarchy mirrors the trust boundaries of the paper: errors raised by
*untrusted* UDF code (``UDFError`` and subclasses) must never be confused
with errors in the trusted server (``ServerError`` and subclasses), because
the former are expected, recoverable events while the latter indicate bugs
or corruption in the DBMS itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, no space, corruption)."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (all frames pinned...)."""


class DiskError(StorageError):
    """The disk manager hit an I/O or file-format problem."""


class RecordError(StorageError):
    """Record (de)serialization failed or a value does not fit the schema."""


class IndexError_(StorageError):
    """A B+-tree operation failed (duplicate key where unique required...)."""


class WALError(StorageError):
    """The write-ahead log hit an I/O problem (e.g. a failed fsync).

    A failed fsync means a commit cannot honestly be acknowledged; the
    log marks itself dead and every subsequent operation raises, so the
    engine stops accepting writes instead of losing them silently.
    """


class SimulatedCrash(StorageError):
    """An injected fault killed the storage layer mid-operation.

    Raised by :class:`~repro.storage.wal.FaultPoint` implementations in
    the fault-injection test harness to model a process death at an
    arbitrary write.  Once raised, the WAL/disk managers refuse all
    further work (a dead process does not keep writing); the harness
    then reopens the database files to exercise crash recovery.
    """


# ---------------------------------------------------------------------------
# SQL layer
# ---------------------------------------------------------------------------

class SQLError(ReproError):
    """Base class for query-processing failures."""


class LexError(SQLError):
    """The tokenizer found an invalid character or unterminated literal."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The parser could not build a statement from the token stream."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanError(SQLError):
    """Semantic analysis / planning failed (unknown table, type mismatch)."""


class ExecutionError(SQLError):
    """A query plan failed while executing."""


class CatalogError(SQLError):
    """Catalog lookup or mutation failed (duplicate table, unknown UDF)."""


# ---------------------------------------------------------------------------
# JaguarVM (the sandboxed "Java" analog)
# ---------------------------------------------------------------------------

class VMError(ReproError):
    """Base class for every JaguarVM failure.

    Every error raised on behalf of sandboxed code derives from this class,
    so the server can catch ``VMError`` at the UDF boundary and know the
    fault is confined to the sandbox.
    """


class CompileError(VMError):
    """The restricted-Python front end rejected the UDF source."""

    def __init__(self, message: str, line: int = -1):
        super().__init__(message)
        self.line = line


class ClassFormatError(VMError):
    """A classfile failed structural validation while being decoded."""


class VerifyError(VMError):
    """The bytecode verifier rejected a classfile (Section 6.1)."""


class LinkError(VMError):
    """Class/function resolution through a class loader failed."""


class VMRuntimeError(VMError):
    """Sandboxed code raised a runtime fault (the Java-exception analog)."""


class BoundsError(VMRuntimeError):
    """An array access was out of range (caught by the mandatory check)."""


class ArithmeticFault(VMRuntimeError):
    """Division by zero or a numeric conversion fault in sandboxed code."""


class StackOverflowFault(VMRuntimeError):
    """Sandboxed code exceeded the call-depth limit."""


class SecurityViolation(VMError):
    """The security manager denied an operation (Section 6.1)."""


class ResourceExhausted(VMError):
    """A resource quota was exceeded (Section 6.2 / J-Kernel analog)."""


class FuelExhausted(ResourceExhausted):
    """The instruction (CPU) quota ran out."""


class AccountRevoked(FuelExhausted):
    """The account was revoked (kill-by-owner, not a runaway loop).

    A subclass of :class:`FuelExhausted` so existing handlers keep
    working, but distinguishable: EXPLAIN/audit can tell a thread-group
    kill apart from a UDF that genuinely burned its own budget.
    """


class MemoryQuotaExceeded(ResourceExhausted):
    """The allocation (heap) quota ran out."""


class AdmissionRefused(ResourceExhausted):
    """Admission control refused an invocation before it started.

    Raised when a certified worst-case claim cannot fit the thread
    group's remaining budget — the invocation is rejected (or queued)
    up front instead of being killed mid-flight.
    """


# ---------------------------------------------------------------------------
# UDF subsystem
# ---------------------------------------------------------------------------

class UDFError(ReproError):
    """Base class for UDF-subsystem failures that are the UDF's fault."""


class UDFRegistrationError(UDFError):
    """A UDF definition was malformed or conflicted with an existing one."""


class UDFInvocationError(UDFError):
    """A UDF raised or returned a value that does not match its signature."""


class UDFCrashed(UDFError):
    """An isolated UDF executor process died; the server survived.

    ``worker_index`` is the pool worker that died and ``shard`` the
    half-open ``(start, stop)`` row range of the batch that worker held
    when it went down — so a crash report names exactly which rows were
    in flight.  Both stay ``None`` when the context is unknown (e.g. a
    crash outside any dispatch).
    """

    def __init__(self, message: str, worker_index=None, shard=None):
        super().__init__(message)
        self.worker_index = worker_index
        self.shard = shard


class CallbackError(UDFError):
    """A UDF callback was unknown, denied, or failed."""


class SFIViolation(UDFError):
    """An SFI-instrumented native UDF touched memory outside its region."""


# ---------------------------------------------------------------------------
# Client/server layer
# ---------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for trusted-server failures."""


class ProtocolError(ServerError):
    """A malformed message arrived on the wire."""


class AuthError(ServerError):
    """A session attempted an operation it is not authorized for."""


class ClientError(ReproError):
    """The client library hit a connection or usage problem."""
