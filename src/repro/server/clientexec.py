"""Client-side UDF execution (Section 3.1's alternative, built out).

    "If the UDF were not available at the server, all the images would
    need to be shipped to the client where their 'redness' would be
    checked as a post-processing filter.  This would correspond to the
    'data-shipping' approach used by object-oriented databases, which
    is known to be a poor choice for certain queries."

The paper argues *for* server-side UDFs by pointing at this strategy's
costs; its future work ("we intend to explore client-side UDFs and find
query optimization techniques to choose between server-side and
client-side execution") is the comparison this module makes runnable:

* :meth:`ClientSideUDF.run_data_shipping` fetches the UDF's argument
  columns over the wire and evaluates the (locally verified) UDF in the
  client's own JaguarVM, filtering post hoc;
* :meth:`ClientSideUDF.run_server_side` migrates the identical
  classfile and lets the server evaluate it inside the plan;
* both report wall time and bytes moved, so the data-shipping penalty
  (and the rare cases where client-side wins, e.g. a hot client cache
  or a server under load) can be measured rather than asserted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ClientError
from .client import Client, LocalUDFHarness


@dataclass
class StrategyOutcome:
    """What one execution strategy cost and produced."""

    strategy: str
    rows: List[tuple]
    seconds: float
    bytes_over_wire: int
    udf_invocations: int


class ClientSideUDF:
    """One UDF, executable at either site over the same connection."""

    def __init__(
        self,
        client: Client,
        harness: LocalUDFHarness,
        name: str,
        source: str,
        param_types: Sequence[str],
        ret_type: str,
        entry: Optional[str] = None,
    ):
        self.client = client
        self.harness = harness
        self.name = name
        self.entry = entry or name
        self.param_types = list(param_types)
        self.ret_type = ret_type
        self.classfile = harness.compile_to_bytes(
            source, class_name=f"udf_{self.entry}"
        )
        self._migrated = False

    # -- strategy 1: data shipping ------------------------------------------

    def run_data_shipping(
        self,
        table: str,
        key_column: str,
        arg_columns: Sequence[str],
        predicate: Callable[[object], bool],
        where: str = "",
    ) -> StrategyOutcome:
        """Ship the argument columns to the client; filter locally.

        Returns the key values whose UDF result satisfies ``predicate``.
        ``where`` may carry the query's *cheap* predicates (the server
        still applies those — only the UDF moves to the client).
        """
        columns = ", ".join([key_column, *arg_columns])
        sql = f"SELECT {columns} FROM {table}"
        if where:
            sql += f" WHERE {where}"
        start = time.perf_counter()
        received_before = self.client.bytes_received
        result = self.client.execute(sql)
        loaded = self.harness.load(self.classfile)
        invocations = 0
        kept: List[tuple] = []
        for row in result.rows:
            args = list(row[1:])
            if any(a is None for a in args):
                continue
            invocations += 1
            value = loaded.invoke(self.entry, args)
            if predicate(value):
                kept.append((row[0],))
        elapsed = time.perf_counter() - start
        return StrategyOutcome(
            strategy="data-shipping (client-side UDF)",
            rows=kept,
            seconds=elapsed,
            bytes_over_wire=self.client.bytes_received - received_before,
            udf_invocations=invocations,
        )

    # -- strategy 2: server side -----------------------------------------------

    def migrate(self) -> None:
        if not self._migrated:
            self.client.register_udf_classfile(
                self.name, self.param_types, self.ret_type,
                self.classfile, entry=self.entry,
            )
            self._migrated = True

    def run_server_side(
        self,
        table: str,
        key_column: str,
        arg_columns: Sequence[str],
        predicate_sql: str,
        where: str = "",
    ) -> StrategyOutcome:
        """Evaluate the UDF inside the server's plan; ship only keys.

        ``predicate_sql`` is the comparison applied to the UDF result,
        e.g. ``"> 0.7"``.
        """
        self.migrate()
        args = ", ".join(arg_columns)
        sql = (
            f"SELECT {key_column} FROM {table} "
            f"WHERE {self.name}({args}) {predicate_sql}"
        )
        if where:
            sql += f" AND {where}"
        start = time.perf_counter()
        received_before = self.client.bytes_received
        result = self.client.execute(sql)
        elapsed = time.perf_counter() - start
        return StrategyOutcome(
            strategy="server-side UDF",
            rows=list(result.rows),
            seconds=elapsed,
            bytes_over_wire=self.client.bytes_received - received_before,
            udf_invocations=result.rowcount,  # lower bound; server-side
        )


def compare_strategies(
    outcome_a: StrategyOutcome, outcome_b: StrategyOutcome
) -> str:
    """A small human-readable comparison (used by the example)."""
    lines = []
    for outcome in (outcome_a, outcome_b):
        lines.append(
            f"  {outcome.strategy:34s} {outcome.seconds * 1000:9.1f} ms"
            f"  {outcome.bytes_over_wire / 1024.0:10.1f} KiB on the wire"
            f"  {len(outcome.rows)} qualifying rows"
        )
    if sorted(outcome_a.rows) != sorted(outcome_b.rows):
        raise ClientError("strategies disagree on the answer!")
    ratio = outcome_a.bytes_over_wire / max(outcome_b.bytes_over_wire, 1)
    lines.append(
        f"  -> data shipping moved {ratio:.0f}x the bytes of server-side"
    )
    return "\n".join(lines)
