"""Stream-serializable ADT values (Section 6.4).

"Every data type used by the database server is mirrored by a
corresponding ADT class ... Each ADT class can read an attribute value
of its type from an input stream and construct an object representing
it.  Likewise, the ADT class can write an object back to an output
stream.  ...  At both client and server, UDFs are invoked using the
identical protocol; input parameters are presented as streams, and the
output parameter is expected as a stream."

This module is that protocol: a tagged binary encoding for every SQL
value type, used by the wire protocol for rows and by the UDF migration
path for test vectors.  Unlike :mod:`pickle`, it can only express data —
a hostile peer cannot smuggle objects or code through it.
"""

from __future__ import annotations

import io
import struct
from array import array
from typing import BinaryIO, List, Sequence

from ..errors import ProtocolError

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_FARR = 6
_TAG_ROW = 7

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

#: Decoder size cap: no single value may claim more than this many bytes.
MAX_VALUE_BYTES = 256 * 1024 * 1024


def write_value(stream: BinaryIO, value: object) -> None:
    """Write one tagged value."""
    if value is None:
        stream.write(bytes([_TAG_NULL]))
    elif isinstance(value, bool):
        stream.write(bytes([_TAG_BOOL, 1 if value else 0]))
    elif isinstance(value, int):
        stream.write(bytes([_TAG_INT]))
        stream.write(_I64.pack(value))
    elif isinstance(value, float):
        stream.write(bytes([_TAG_FLOAT]))
        stream.write(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        stream.write(bytes([_TAG_STR]))
        stream.write(_U32.pack(len(raw)))
        stream.write(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        stream.write(bytes([_TAG_BYTES]))
        stream.write(_U32.pack(len(raw)))
        stream.write(raw)
    elif isinstance(value, array) and value.typecode == "d":
        raw = value.tobytes()
        stream.write(bytes([_TAG_FARR]))
        stream.write(_U32.pack(len(value)))
        stream.write(raw)
    elif isinstance(value, (tuple, list)):
        stream.write(bytes([_TAG_ROW]))
        stream.write(_U32.pack(len(value)))
        for item in value:
            write_value(stream, item)
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__} is not stream-serializable"
        )


def read_value(stream: BinaryIO):
    """Read one tagged value; raises :class:`ProtocolError` on bad input."""
    tag_byte = stream.read(1)
    if not tag_byte:
        raise ProtocolError("unexpected end of stream")
    tag = tag_byte[0]
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_BOOL:
        flag = _take(stream, 1)[0]
        if flag not in (0, 1):
            raise ProtocolError(f"bad bool byte {flag}")
        return flag == 1
    if tag == _TAG_INT:
        return _I64.unpack(_take(stream, 8))[0]
    if tag == _TAG_FLOAT:
        return _F64.unpack(_take(stream, 8))[0]
    if tag == _TAG_STR:
        length = _length(stream)
        try:
            return _take(stream, length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid utf-8 string: {exc}") from None
    if tag == _TAG_BYTES:
        return _take(stream, _length(stream))
    if tag == _TAG_FARR:
        count = _length(stream)
        if count * 8 > MAX_VALUE_BYTES:
            raise ProtocolError("float array too large")
        values = array("d")
        values.frombytes(_take(stream, count * 8))
        return values
    if tag == _TAG_ROW:
        count = _length(stream)
        if count > 1_000_000:
            raise ProtocolError("row too wide")
        return tuple(read_value(stream) for __ in range(count))
    raise ProtocolError(f"unknown value tag {tag}")


def dumps(value: object) -> bytes:
    buffer = io.BytesIO()
    write_value(buffer, value)
    return buffer.getvalue()


def loads(data: bytes):
    stream = io.BytesIO(data)
    value = read_value(stream)
    if stream.read(1):
        raise ProtocolError("trailing bytes after value")
    return value


def dump_rows(rows: Sequence[Sequence[object]]) -> bytes:
    buffer = io.BytesIO()
    buffer.write(_U32.pack(len(rows)))
    for row in rows:
        write_value(buffer, tuple(row))
    return buffer.getvalue()


def load_rows(data: bytes) -> List[tuple]:
    stream = io.BytesIO(data)
    count = _length(stream)
    rows = []
    for __ in range(count):
        row = read_value(stream)
        if not isinstance(row, tuple):
            raise ProtocolError("row payload did not contain a row")
        rows.append(row)
    if stream.read(1):
        raise ProtocolError("trailing bytes after rows")
    return rows


def _take(stream: BinaryIO, n: int) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise ProtocolError("truncated value")
    return data


def _length(stream: BinaryIO) -> int:
    length = _U32.unpack(_take(stream, 4))[0]
    if length > MAX_VALUE_BYTES:
        raise ProtocolError(f"declared size {length} exceeds limit")
    return length
