"""Per-tenant admission control for the concurrent server.

One heavy UDF user must not starve everyone else.  The existing
mechanism for that is :class:`~repro.vm.threadgroups.ThreadGroup`
budgets — claims reserved up front, :class:`~repro.errors.AdmissionRefused`
when they cannot fit — and this module extends it from per-UDF to
per-tenant: every tenant gets a thread group named ``tenant:<name>``
whose fuel budget counts *concurrently executing statements* (one fuel
unit each).  A DBA can inspect a tenant's reservations or kill its group
with the same tools that already work for UDF groups.

On top of the groups sits a fair dispatcher: statements wait in bounded
per-tenant FIFO queues, and a free worker slot is given to the *next
tenant in round-robin order* that has queued work and a free in-flight
slot — so a tenant with a thousand queued statements still yields to a
tenant with one.  A statement arriving at a full tenant queue is refused
immediately (the hard cap) instead of being buffered without bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import Callable, Dict, Optional

from ..errors import AdmissionRefused, SecurityViolation

#: Statements of one tenant allowed to execute concurrently.
DEFAULT_TENANT_SLOTS = 2
#: Statements of one tenant allowed to wait; the hard cap.
DEFAULT_TENANT_QUEUE_CAP = 32


class AdmissionController:
    """Round-robin fair dispatcher over per-tenant bounded queues.

    ``submit(tenant, thunk)`` returns a :class:`Future` that completes
    with the thunk's result once a worker ran it — or fails with
    :class:`AdmissionRefused` (queue cap) / :class:`SecurityViolation`
    (tenant group killed).  Work runs on the caller-supplied executor;
    the controller only decides *order and admission*.
    """

    def __init__(
        self,
        executor,
        thread_groups=None,
        tenant_slots: int = DEFAULT_TENANT_SLOTS,
        queue_cap: int = DEFAULT_TENANT_QUEUE_CAP,
    ):
        if tenant_slots < 1:
            raise ValueError(f"tenant_slots must be >= 1, got {tenant_slots}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        self.executor = executor
        self.thread_groups = thread_groups
        self.tenant_slots = tenant_slots
        self.queue_cap = queue_cap
        self._lock = threading.Lock()
        #: tenant -> FIFO of (future, thunk); insertion order doubles as
        #: the round-robin ring (rotated via ``_ring``).
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._ring: deque = deque()
        self._in_flight: Dict[str, int] = {}
        self.admitted = 0
        self.refused = 0
        self.completed = 0

    # -- admission ---------------------------------------------------------

    def submit(self, tenant: str, thunk: Callable[[], object]) -> Future:
        """Queue one statement for ``tenant``; refuse over the hard cap."""
        future: Future = Future()
        with self._lock:
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
                self._ring.append(tenant)
            if len(queue) >= self.queue_cap:
                self.refused += 1
                raise AdmissionRefused(
                    f"tenant {tenant!r}: {len(queue)} statements already "
                    f"queued (cap {self.queue_cap})"
                )
            queue.append((future, thunk))
        self._dispatch()
        return future

    def _dispatch(self) -> None:
        """Hand queued statements to the executor, fairly across tenants."""
        while True:
            with self._lock:
                job = None
                for __ in range(len(self._ring)):
                    tenant = self._ring[0]
                    self._ring.rotate(-1)
                    queue = self._queues.get(tenant)
                    if (
                        queue
                        and self._in_flight.get(tenant, 0)
                            < self.tenant_slots
                    ):
                        job = (tenant,) + queue.popleft()
                        self._in_flight[tenant] = (
                            self._in_flight.get(tenant, 0) + 1
                        )
                        break
                if job is None:
                    return
            tenant, future, thunk = job
            try:
                group = self._tenant_group(tenant)
                if group is not None:
                    group.reserve(1, 0, holder=f"tenant:{tenant}")
            except (AdmissionRefused, SecurityViolation) as exc:
                with self._lock:
                    self._in_flight[tenant] -= 1
                    self.refused += 1
                future.set_exception(exc)
                continue
            with self._lock:
                self.admitted += 1
            self.executor.submit(self._run, tenant, future, thunk)

    def _run(self, tenant: str, future: Future, thunk) -> None:
        try:
            result = thunk()
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)
        finally:
            group = self._tenant_group(tenant)
            if group is not None:
                group.release(1, 0, holder=f"tenant:{tenant}")
            with self._lock:
                self._in_flight[tenant] -= 1
                self.completed += 1
            self._dispatch()

    def _tenant_group(self, tenant: str):
        """The tenant's thread group, budgeted to its in-flight slots."""
        if self.thread_groups is None:
            return None
        name = f"tenant:{tenant}"
        group = self.thread_groups.group_for(name)
        if group.fuel_budget is None:
            self.thread_groups.set_budget(name, fuel=self.tenant_slots)
        return group

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "tenant_slots": self.tenant_slots,
                "queue_cap": self.queue_cap,
                "admitted": self.admitted,
                "refused": self.refused,
                "completed": self.completed,
                "queued": {
                    tenant: len(queue)
                    for tenant, queue in self._queues.items()
                    if queue
                },
                "in_flight": {
                    tenant: count
                    for tenant, count in self._in_flight.items()
                    if count
                },
            }
