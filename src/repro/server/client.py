"""Client library and the portable UDF development workflow.

Section 6.4: "Our goal is to be able to allow users to easily define new
Java UDFs, test them at the client, and migrate them to the server."

* :class:`Client` is the database driver (the paper's applet/JDBC-ish
  library): execute SQL, receive rows, register UDFs.
* :class:`LocalUDFHarness` is the client-side development environment:
  compile JagScript locally, verify it with the *same* verifier the
  server runs, invoke it against mock callbacks, and finally hand the
  identical classfile bytes to :meth:`Client.register_udf_classfile` —
  migration without changing a byte, which is the portability claim.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.callbacks import standard_callback_signatures
from ..errors import ClientError, ReproError
from ..vm.classfile import ClassFile
from ..vm.compiler import compile_source
from ..vm.interpreter import ExecutionContext
from ..vm.jit import invoke_jit
from ..vm.machine import JaguarVM
from ..vm.security import Permissions
from . import protocol


#: Exception raised client-side when the server reports an error.
class ServerReportedError(ClientError):
    def __init__(self, error_class: str, message: str):
        super().__init__(f"{error_class}: {message}")
        self.error_class = error_class


@dataclass
class ClientResult:
    columns: List[str]
    rows: List[tuple]
    rowcount: int

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def scalar(self):
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ClientError("scalar() needs a 1x1 result")
        return self.rows[0][0]


class Client:
    """A connection to a :class:`~repro.server.server.DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        tenant: Optional[str] = None,
    ):
        try:
            self._sock = socket.create_connection((host, port), timeout)
        except OSError as exc:
            raise ClientError(f"cannot connect to {host}:{port}: {exc}") from None
        #: Wire accounting (drives the Section 3.1 data-shipping study).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.tenant = tenant
        # ``tenant`` declares an admission-control identity to the
        # concurrent server; the classic empty HELLO makes this session
        # its own tenant (and is what older servers expect).
        hello = protocol.encode_values(tenant) if tenant is not None else b""
        protocol.send_frame(self._sock, protocol.OP_HELLO, hello)
        opcode, payload = self._recv()
        if opcode != protocol.OP_WELCOME:
            raise ClientError("server did not answer HELLO")
        self.session_id, self.trusted = protocol.decode_values(payload, 2)

    def _send(self, opcode: int, payload: bytes = b"") -> None:
        self.bytes_sent += len(payload) + 5
        protocol.send_frame(self._sock, opcode, payload)

    def _recv(self):
        opcode, payload = protocol.recv_frame(self._sock)
        self.bytes_received += len(payload) + 5
        return opcode, payload

    # -- basic operations ---------------------------------------------------

    def execute(self, sql: str) -> ClientResult:
        self._send(protocol.OP_EXECUTE, protocol.encode_values(sql))
        # Large results stream as OP_RESULT_PART chunks closed by the
        # final OP_RESULT; reassembly is plain concatenation.
        chunks = []
        while True:
            opcode, payload = self._recv()
            if opcode == protocol.OP_RESULT_PART:
                chunks.append(payload)
                continue
            if opcode == protocol.OP_ERROR:
                raise ServerReportedError(
                    *protocol.decode_values(payload, 2)
                )
            if opcode != protocol.OP_RESULT:
                raise ClientError(f"unexpected reply opcode {opcode}")
            chunks.append(payload)
            break
        columns, rowcount, rows = protocol.decode_result(b"".join(chunks))
        return ClientResult(columns=columns, rows=rows, rowcount=rowcount)

    def ping(self) -> bool:
        self._send(protocol.OP_PING)
        opcode, __ = self._recv()
        return opcode == protocol.OP_PONG

    def register_udf_classfile(
        self,
        name: str,
        param_types: Sequence[str],
        ret_type: str,
        classfile: bytes,
        design: str = "sandbox_jit",
        entry: Optional[str] = None,
        callbacks: Sequence[str] = (),
    ) -> None:
        """Migrate a compiled UDF to the server (Section 6.4)."""
        payload = protocol.encode_values(
            name,
            tuple(param_types),
            ret_type,
            design,
            entry or name,
            tuple(callbacks),
            bytes(classfile),
        )
        self._send(protocol.OP_REGISTER_UDF, payload)
        opcode, reply = self._recv()
        if opcode == protocol.OP_ERROR:
            raise ServerReportedError(*protocol.decode_values(reply, 2))
        if opcode != protocol.OP_OK:
            raise ClientError(f"unexpected reply opcode {opcode}")

    def close(self) -> None:
        try:
            protocol.send_frame(self._sock, protocol.OP_CLOSE)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalUDFHarness:
    """Client-side UDF development environment.

    Compiles JagScript with the *standard* callback signature table (the
    same one the server's broker advertises), verifies with the same
    verifier, and runs locally with caller-supplied mock callbacks.
    Because verification and execution semantics are identical at both
    sites, a UDF that works here runs unchanged after migration.
    """

    def __init__(
        self,
        mock_callbacks: Optional[Dict[str, Callable]] = None,
        use_jit: bool = True,
    ):
        self.signatures = standard_callback_signatures()
        self.mock_callbacks = mock_callbacks or {"cb_noop": lambda: 0}
        self.vm = JaguarVM(self.signatures, use_jit=use_jit)
        self._counter = 0

    def compile(self, source: str, class_name: str = "Main") -> ClassFile:
        """Compile (not yet verified — loading verifies)."""
        return compile_source(source, class_name, callbacks=self.signatures)

    def compile_to_bytes(self, source: str, class_name: str = "Main") -> bytes:
        """Compile and serialize: the exact bytes migration will ship."""
        return self.compile(source, class_name).to_bytes()

    def run(
        self,
        classfile: bytes,
        entry: str,
        args: Sequence[object],
        callbacks: Sequence[str] = (),
    ) -> object:
        """Load (verify) and invoke locally, with mock callbacks."""
        self._counter += 1
        name = f"dev{self._counter}"
        loaded = self.vm.load_udf(
            name=name,
            classfiles=[bytes(classfile)],
            permissions=Permissions(callbacks=frozenset(callbacks)),
            callbacks=self.mock_callbacks,
        )
        try:
            return loaded.invoke(entry, args)
        finally:
            self.vm.unload_udf(name)

    def load(
        self,
        classfile: bytes,
        callbacks: Sequence[str] = (),
    ):
        """Load (verify) once for repeated invocations.

        Returns a :class:`~repro.vm.machine.LoadedUDF`; use this instead
        of :meth:`run` when invoking the UDF many times (e.g. the
        client-side post-filter of the data-shipping strategy).
        """
        self._counter += 1
        return self.vm.load_udf(
            name=f"dev{self._counter}",
            classfiles=[bytes(classfile)],
            permissions=Permissions(callbacks=frozenset(callbacks)),
            callbacks=self.mock_callbacks,
        )

    def develop(
        self,
        source: str,
        entry: str,
        test_vectors: Sequence[Tuple[Sequence[object], object]],
        callbacks: Sequence[str] = (),
    ) -> bytes:
        """The full client-side loop: compile, verify, test, return bytes.

        ``test_vectors`` is a list of (args, expected) pairs; a mismatch
        raises :class:`ClientError` before anything is migrated.
        """
        classfile = self.compile_to_bytes(source, class_name=f"udf_{entry}")
        for args, expected in test_vectors:
            actual = self.run(classfile, entry, args, callbacks)
            if actual != expected:
                raise ClientError(
                    f"local test failed: {entry}{tuple(args)!r} returned "
                    f"{actual!r}, expected {expected!r}"
                )
        return classfile
