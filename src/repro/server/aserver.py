"""The concurrent multi-session server: asyncio front end.

Where :class:`~repro.server.server.DatabaseServer` gives every client a
thread and serializes all execution behind one lock,
:class:`AsyncDatabaseServer` multiplexes every connection on one event
loop and dispatches statement *execution* to a bounded worker pool:

* **Reads run concurrently.**  On start the server enables the
  database's :class:`~repro.storage.mvcc.SnapshotManager`; each SELECT
  pins a snapshot and scans frozen table images, so any number of
  readers proceed in parallel with each other and with the writer
  (``Database.execute_read`` — plan cache, private UDF executors).
* **Writes stay single-writer.**  DDL/DML/CREATE FUNCTION serialize on
  the database write lock, then install fresh table images; readers
  admitted before the write keep their pinned versions.
* **Plans are shared.**  Repeat statements across sessions hit the
  database's prepared-plan cache (keyed on SQL text + schema epoch +
  optimizer settings) and skip parse/plan/optimize entirely.
* **Tenants are isolated.**  Statements are admitted through
  :class:`~repro.server.admission.AdmissionController`: bounded
  per-tenant queues, round-robin dequeue, per-tenant thread-group
  budgets, :class:`~repro.errors.AdmissionRefused` over the cap.

The wire protocol is unchanged (same opcodes, same frames — one new
``OP_RESULT_PART`` for chunked large results), so the existing
:class:`~repro.server.client.Client` talks to either server; with one
client the replies are bit-identical to the threaded server's.

The event loop runs on a background thread so ``start()``/``stop()``
keep the synchronous API of the threaded server.  Per connection,
frames are handled strictly in order (a session's statements never
overlap each other); concurrency comes from having many connections.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set

from ..database import Database
from ..errors import ProtocolError
from . import protocol
from .admission import (
    DEFAULT_TENANT_QUEUE_CAP,
    DEFAULT_TENANT_SLOTS,
    AdmissionController,
)
from .server import build_udf_definition, materialize_rows
from .session import Session

DEFAULT_CONCURRENCY = 8


class AsyncDatabaseServer:
    """Concurrent TCP front end over one embedded :class:`Database`."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        trust_all_clients: bool = False,
        concurrency: int = DEFAULT_CONCURRENCY,
        tenant_slots: int = DEFAULT_TENANT_SLOTS,
        tenant_queue_cap: int = DEFAULT_TENANT_QUEUE_CAP,
        drain_timeout: float = 5.0,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.database = database
        self.trust_all_clients = trust_all_clients
        self.concurrency = concurrency
        self.tenant_slots = min(tenant_slots, concurrency)
        self.tenant_queue_cap = tenant_queue_cap
        self.drain_timeout = drain_timeout
        self._requested_host = host
        self._requested_port = port
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.admission: Optional[AdmissionController] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._busy = 0        # statements in flight; loop-thread only
        self._draining = False
        self._state_lock = threading.Lock()
        self.sessions_served = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.database.snapshots.enable(self.database)
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="stmt-worker"
        )
        self.admission = AdmissionController(
            self._executor,
            self.database.thread_groups,
            tenant_slots=self.tenant_slots,
            queue_cap=self.tenant_queue_cap,
        )
        self.database.attach_stats_source("server", self.stats_snapshot)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._run_loop, args=(started,),
            name="aserver-loop", daemon=True,
        )
        self._loop_thread.start()
        started.wait(timeout=10.0)
        future = asyncio.run_coroutine_threadsafe(
            self._start_listener(), self._loop
        )
        future.result(timeout=10.0)

    def _run_loop(self, started: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(started.set)
        self._loop.run_forever()

    async def _start_listener(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self._requested_host,
            self._requested_port,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain and shut down.

        Stops accepting, waits up to ``timeout`` (default
        ``drain_timeout``) for in-flight statements to deliver their
        result or error frame, then closes the remaining connections and
        tears the loop down.  Idempotent.
        """
        if self._loop is None:
            return
        deadline = self.drain_timeout if timeout is None else timeout
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(deadline), self._loop
        )
        try:
            future.result(timeout=deadline + 10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    async def _shutdown(self, deadline: float) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_event_loop()
        end = loop.time() + deadline
        while self._busy and loop.time() < end:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        tasks = list(self._conn_tasks)
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)
        for task in list(self._conn_tasks):
            task.cancel()

    def __enter__(self) -> "AsyncDatabaseServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        with self._state_lock:
            self.sessions_served += 1
        peername = writer.get_extra_info("peername") or ("?", 0)
        session = Session(
            peer=f"{peername[0]}:{peername[1]}",
            trusted=self.trust_all_clients,
        )
        try:
            while not self._draining:
                try:
                    opcode, payload = await self._recv_frame(reader)
                except (ProtocolError, asyncio.IncompleteReadError,
                        ConnectionError):
                    return
                if opcode == protocol.OP_CLOSE:
                    return
                self._busy += 1
                try:
                    await self._handle(writer, session, opcode, payload)
                except (ConnectionError, asyncio.CancelledError):
                    return
                finally:
                    self._busy -= 1
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            writer.close()

    async def _recv_frame(self, reader: asyncio.StreamReader):
        header = await reader.readexactly(protocol._FRAME.size)
        length, opcode = protocol._FRAME.unpack(header)
        if length < 1 or length > protocol.MAX_FRAME:
            raise ProtocolError(f"bad frame length {length}")
        payload = await reader.readexactly(length - 1)
        return opcode, payload

    async def _send_frame(
        self, writer: asyncio.StreamWriter, opcode: int,
        payload: bytes = b"",
    ) -> None:
        if len(payload) + 1 > protocol.MAX_FRAME:
            raise ProtocolError("frame too large")
        writer.write(
            protocol._FRAME.pack(len(payload) + 1, opcode) + payload
        )
        await writer.drain()

    async def _handle(
        self, writer, session: Session, opcode: int, payload: bytes
    ) -> None:
        try:
            if opcode == protocol.OP_HELLO:
                # Optional payload: (tenant name,).  Absent (the classic
                # handshake) each session is its own tenant.
                if payload:
                    (tenant,) = protocol.decode_values(payload, 1)
                    session.tenant = str(tenant)
                await self._send_frame(
                    writer,
                    protocol.OP_WELCOME,
                    protocol.encode_values(
                        session.session_id, session.trusted
                    ),
                )
            elif opcode == protocol.OP_PING:
                await self._send_frame(writer, protocol.OP_PONG)
            elif opcode == protocol.OP_EXECUTE:
                (sql,) = protocol.decode_values(payload, 1)
                session.note_statement()
                frames = await self._run_admitted(
                    session, self._execute_sql, sql
                )
                for frame_opcode, frame_payload in frames:
                    await self._send_frame(
                        writer, frame_opcode, frame_payload
                    )
            elif opcode == protocol.OP_REGISTER_UDF:
                await self._run_admitted(
                    session, self._register_udf, session, payload
                )
                session.note_udf_registered()
                await self._send_frame(writer, protocol.OP_OK)
            else:
                raise ProtocolError(f"unknown opcode {opcode}")
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # every failure becomes an ERROR frame
            await self._send_frame(
                writer,
                protocol.OP_ERROR,
                protocol.encode_values(type(exc).__name__, str(exc)),
            )

    async def _run_admitted(self, session: Session, fn, *args):
        """Run ``fn`` on the worker pool under tenant admission."""
        future = self.admission.submit(
            session.tenant_name, lambda: fn(*args)
        )
        return await asyncio.wrap_future(future)

    # -- statement execution (worker threads) ------------------------------

    def _execute_sql(self, sql: str):
        """Execute and pre-encode one statement's reply frames.

        Runs on a worker thread: reads pin a snapshot and share cached
        plans; writes serialize on the database write lock inside
        ``execute_read``'s fallback.  Encoding (including LOB
        materialization) happens here too, keeping the event loop free
        for multiplexing.
        """
        result = self.database.execute_read(sql)
        rows = materialize_rows(self.database, result.rows)
        return list(protocol.result_frames(result.columns, rows))

    def _register_udf(self, session: Session, payload: bytes) -> None:
        definition = build_udf_definition(session, payload)
        # Classfile bytes re-verify at registration (never trust the
        # client); the catalog write bumps the schema epoch, so every
        # cached plan from before this UDF existed stops hitting.
        # register_udf serializes itself (write pipeline / DDL lock).
        self.database.register_udf(definition)

    # -- introspection -----------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Server counters for ``db.stats()`` (see attach_stats_source)."""
        with self._state_lock:
            data = {
                "kind": "async",
                "concurrency": self.concurrency,
                "sessions_served": self.sessions_served,
                "open_connections": len(self._writers),
                "busy_statements": self._busy,
            }
        if self.admission is not None:
            data["admission"] = self.admission.stats()
        data["plan_cache"] = self.database.plan_cache.stats()
        data["snapshots"] = self.database.snapshots.stats()
        if self.database.wal is not None:
            # Group-commit effectiveness next to the admission counters:
            # batched writer wakeups show up as mean/max fsync batch.
            data["wal"] = self.database.wal.stats()
        return data
