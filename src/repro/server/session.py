"""Per-connection session state and authorization.

The paper's deployment scenario (Section 1) is "a large number of ...
users in a web environment ... unknown or untrusted clients".  The
session's authorization policy encodes the consequence: an untrusted
session may only register UDFs in designs that contain them — the
sandboxed ones, plus the isolated-process design.  Native *integrated*
code (Design 1) "essentially corresponds to hard-coding the UDF into the
server" and is reserved for trusted sessions (the DBA / third-party
vendor path of Section 2.2).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..core.designs import Design
from ..errors import AuthError
from ..vm.resources import QuotaPolicy

#: Designs any (untrusted, web-style) client may use.
UNTRUSTED_DESIGNS: FrozenSet[Design] = frozenset(
    {
        Design.SANDBOX_JIT,
        Design.SANDBOX_INTERP,
        Design.SANDBOX_ISOLATED,
        Design.NATIVE_ISOLATED,
    }
)

_session_ids = itertools.count(1)


@dataclass
class Session:
    """State for one connected client."""

    peer: str
    trusted: bool = False
    session_id: int = field(default_factory=lambda: next(_session_ids))
    statements: int = 0
    udfs_registered: int = 0
    #: Optional per-session quota override: UDFs registered through this
    #: session are capped to this policy instead of the server-wide
    #: default.  A derived :class:`QuotaPolicy` object — never a mutated
    #: global — so two sessions with different caps coexist safely.
    policy: Optional[QuotaPolicy] = None
    #: Admission-control identity.  Clients may declare a tenant name in
    #: their HELLO; undeclared sessions each form a tenant of their own
    #: (``session-<id>``), so per-tenant budgets degrade to per-session.
    tenant: Optional[str] = None
    #: Guards the counters above: the concurrent server touches one
    #: session from multiple worker threads.
    _counter_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def tenant_name(self) -> str:
        return self.tenant or f"session-{self.session_id}"

    def note_statement(self) -> int:
        with self._counter_lock:
            self.statements += 1
            return self.statements

    def note_udf_registered(self) -> int:
        with self._counter_lock:
            self.udfs_registered += 1
            return self.udfs_registered

    def check_design_allowed(self, design: Design) -> None:
        if self.trusted or design in UNTRUSTED_DESIGNS:
            return
        raise AuthError(
            f"session {self.session_id} ({self.peer}) is not authorized "
            f"to register {design.paper_label!r} UDFs; untrusted clients "
            f"may use: "
            + ", ".join(sorted(d.paper_label for d in UNTRUSTED_DESIGNS))
        )
