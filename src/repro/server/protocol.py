"""Wire protocol: length-prefixed, opcode-tagged frames.

Frame layout::

    [u32 length][u8 opcode][payload ...]

Payload contents are ADT-stream values (:mod:`repro.server.adtstream`),
never pickle — the server must assume clients are hostile (they are
"unknown or untrusted", Section 1).
"""

from __future__ import annotations

import io
import socket
import struct
from typing import Optional, Tuple

from ..errors import ProtocolError
from . import adtstream

_FRAME = struct.Struct("<IB")
MAX_FRAME = 512 * 1024 * 1024

# Client -> server
OP_HELLO = 1
OP_EXECUTE = 2        # payload: (sql,)
OP_REGISTER_UDF = 3   # payload: (name, params row, ret, design, entry,
                      #           callbacks row, payload bytes)
OP_CLOSE = 4
OP_PING = 5

# Server -> client
OP_WELCOME = 16
OP_RESULT = 17        # payload: (columns row, rowcount, rows bytes)
OP_OK = 18
OP_ERROR = 19         # payload: (error class name, message)
OP_PONG = 20
OP_RESULT_PART = 21   # payload: one chunk of a large OP_RESULT payload

#: Maximum payload carried by one result frame.  Larger encoded results
#: are streamed as OP_RESULT_PART continuation frames capped at this
#: size, closing with a final OP_RESULT — mirroring the isolated
#: channel's 1 MiB retained-buffer bound, so a LOB-heavy result cannot
#: balloon one frame toward MAX_FRAME.
RESULT_CHUNK_CAP = 1024 * 1024


def send_frame(sock: socket.socket, opcode: int, payload: bytes = b"") -> None:
    if len(payload) + 1 > MAX_FRAME:
        raise ProtocolError("frame too large")
    header = _FRAME.pack(len(payload) + 1, opcode)
    sock.sendall(header + payload)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = _recv_exact(sock, _FRAME.size)
    length, opcode = _FRAME.unpack(header)
    if length < 1 or length > MAX_FRAME:
        raise ProtocolError(f"bad frame length {length}")
    payload = _recv_exact(sock, length - 1)
    return opcode, payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- payload builders ---------------------------------------------------------

def encode_values(*values: object) -> bytes:
    buffer = io.BytesIO()
    for value in values:
        adtstream.write_value(buffer, value)
    return buffer.getvalue()


def decode_values(payload: bytes, count: int) -> tuple:
    stream = io.BytesIO(payload)
    values = tuple(adtstream.read_value(stream) for __ in range(count))
    if stream.read(1):
        raise ProtocolError("trailing bytes in payload")
    return values


def encode_result(columns, rows) -> bytes:
    return encode_values(tuple(columns), len(rows)) + adtstream.dump_rows(rows)


def result_frames(columns, rows):
    """``(opcode, payload)`` frames for one result, chunked if large.

    A result whose encoding fits :data:`RESULT_CHUNK_CAP` ships as the
    single classic ``OP_RESULT`` frame (bit-identical to the unchunked
    protocol); anything bigger ships as ``OP_RESULT_PART`` chunks
    followed by an ``OP_RESULT`` carrying the final chunk.  The client
    reassembles by concatenation, so
    ``decode_result(b"".join(payloads))`` sees exactly the one-frame
    encoding.
    """
    payload = encode_result(columns, rows)
    if len(payload) <= RESULT_CHUNK_CAP:
        yield OP_RESULT, payload
        return
    offset = 0
    while len(payload) - offset > RESULT_CHUNK_CAP:
        yield OP_RESULT_PART, payload[offset:offset + RESULT_CHUNK_CAP]
        offset += RESULT_CHUNK_CAP
    yield OP_RESULT, payload[offset:]


def decode_result(payload: bytes):
    stream = io.BytesIO(payload)
    columns = adtstream.read_value(stream)
    rowcount = adtstream.read_value(stream)
    rows = adtstream.load_rows(stream.read())
    if not isinstance(columns, tuple) or not isinstance(rowcount, int):
        raise ProtocolError("malformed result payload")
    return list(columns), rowcount, rows
