"""Client/server deployment: wire protocol, threaded server, client
library, and the portable UDF development workflow (Section 6.4)."""

from .adtstream import read_value, write_value
from .client import Client, LocalUDFHarness
from .server import DatabaseServer

__all__ = [
    "Client",
    "DatabaseServer",
    "LocalUDFHarness",
    "read_value",
    "write_value",
]
