"""Client/server deployment: wire protocol, threaded and concurrent
servers, client library, and the portable UDF development workflow
(Section 6.4)."""

from .admission import AdmissionController
from .adtstream import read_value, write_value
from .aserver import AsyncDatabaseServer
from .client import Client, LocalUDFHarness
from .server import DatabaseServer

__all__ = [
    "AdmissionController",
    "AsyncDatabaseServer",
    "Client",
    "DatabaseServer",
    "LocalUDFHarness",
    "read_value",
    "write_value",
]
