"""The threaded database server.

"The server is a single multi-threaded process, with at least one thread
per connected client" (Section 4).  :class:`DatabaseServer` accepts TCP
connections and serves each on its own thread against one shared
:class:`~repro.database.Database`.

Statement execution is serialized by a global lock: PREDATOR's storage
ran concurrent clients, but its *expression evaluation* was serial, and
a single-writer embedded engine keeps the reproduction honest about what
it measures (the benchmarks are single-client anyway).  The interesting
concurrency — threads created for UDF thread groups, remote executor
processes — happens below this lock.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from ..core.designs import Design
from ..core.udf import UDFDefinition, UDFSignature
from ..database import Database
from ..errors import ProtocolError, ReproError
from . import protocol
from .session import Session


class DatabaseServer:
    """TCP front end over one embedded :class:`Database`."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        trust_all_clients: bool = False,
    ):
        self.database = database
        self.trust_all_clients = trust_all_clients
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self.sessions_served = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="server-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "DatabaseServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept / serve -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            self.sessions_served += 1
            thread = threading.Thread(
                target=self._serve_client,
                args=(conn, addr),
                name=f"client-{addr[1]}",
                daemon=True,
            )
            thread.start()

    def _serve_client(self, conn: socket.socket, addr) -> None:
        session = Session(
            peer=f"{addr[0]}:{addr[1]}", trusted=self.trust_all_clients
        )
        try:
            with conn:
                while True:
                    try:
                        opcode, payload = protocol.recv_frame(conn)
                    except ProtocolError:
                        return
                    if opcode == protocol.OP_CLOSE:
                        return
                    self._handle(conn, session, opcode, payload)
        except OSError:
            return

    def _handle(self, conn, session: Session, opcode: int, payload: bytes) -> None:
        try:
            if opcode == protocol.OP_HELLO:
                protocol.send_frame(
                    conn,
                    protocol.OP_WELCOME,
                    protocol.encode_values(session.session_id, session.trusted),
                )
            elif opcode == protocol.OP_PING:
                protocol.send_frame(conn, protocol.OP_PONG)
            elif opcode == protocol.OP_EXECUTE:
                (sql,) = protocol.decode_values(payload, 1)
                session.statements += 1
                with self._lock:
                    result = self.database.execute(sql)
                    rows = self._materialize(result.rows)
                protocol.send_frame(
                    conn,
                    protocol.OP_RESULT,
                    protocol.encode_result(result.columns, rows),
                )
            elif opcode == protocol.OP_REGISTER_UDF:
                self._register_udf(conn, session, payload)
            else:
                raise ProtocolError(f"unknown opcode {opcode}")
        except Exception as exc:  # every failure becomes an ERROR frame
            protocol.send_frame(
                conn,
                protocol.OP_ERROR,
                protocol.encode_values(type(exc).__name__, str(exc)),
            )

    def _materialize(self, rows):
        """Resolve LOB references into bytes before rows leave the server.

        Embedded callers can keep references and stream ranges; a remote
        client has no access to the server's pages, so projected large
        objects ship by value (this is what makes the data-shipping
        strategy of Section 3.1 expensive — measurably so).
        """
        from ..storage.lob import LOBRef

        materialized = []
        for row in rows:
            if any(isinstance(value, LOBRef) for value in row):
                row = tuple(
                    self.database.lobs.read(value)
                    if isinstance(value, LOBRef) else value
                    for value in row
                )
            materialized.append(row)
        return materialized

    def _register_udf(self, conn, session: Session, payload: bytes) -> None:
        name, params, ret, design_name, entry, callbacks, udf_payload = (
            protocol.decode_values(payload, 7)
        )
        design = Design(design_name)
        session.check_design_allowed(design)
        # A session-level QuotaPolicy caps this session's registrations;
        # None inherits the server VM's default policy at load time.
        policy = session.policy
        definition = UDFDefinition(
            name=name,
            signature=UDFSignature(tuple(params), ret),
            design=design,
            payload=bytes(udf_payload),
            entry=entry,
            callbacks=tuple(callbacks),
            # The wire protocol carries no hints; the analyzer derives
            # them from the (re-verified) payload at registration.
            cost=None,
            fuel=policy.fuel if policy is not None else None,
            memory=policy.memory if policy is not None else None,
        )
        with self._lock:
            # The payload may be classfile bytes compiled at the client;
            # registration re-verifies them (never trust the client).
            self.database.register_udf(definition)
        session.udfs_registered += 1
        protocol.send_frame(conn, protocol.OP_OK)
