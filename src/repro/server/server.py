"""The threaded database server.

"The server is a single multi-threaded process, with at least one thread
per connected client" (Section 4).  :class:`DatabaseServer` accepts TCP
connections and serves each on its own thread against one shared
:class:`~repro.database.Database`.

Statement execution is serialized by a global lock: PREDATOR's storage
ran concurrent clients, but its *expression evaluation* was serial, and
a single-writer embedded engine keeps the reproduction honest about what
it measures (the benchmarks are single-client anyway).  The interesting
concurrency — threads created for UDF thread groups, remote executor
processes — happens below this lock.  For concurrent statement
execution, see :class:`~repro.server.aserver.AsyncDatabaseServer`, which
speaks the same wire protocol.

``stop()`` drains: it waits (bounded) for in-flight statements to send
their result or error frame, then unblocks idle reader threads by
closing their sockets, and joins every client thread.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Set

from ..core.designs import Design
from ..core.udf import UDFDefinition, UDFSignature
from ..database import Database
from ..errors import ProtocolError, ReproError
from . import protocol
from .session import Session


def materialize_rows(database: Database, rows):
    """Resolve LOB references into bytes before rows leave the server.

    Embedded callers can keep references and stream ranges; a remote
    client has no access to the server's pages, so projected large
    objects ship by value (this is what makes the data-shipping
    strategy of Section 3.1 expensive — measurably so).
    """
    from ..storage.lob import LOBRef

    materialized = []
    for row in rows:
        if any(isinstance(value, LOBRef) for value in row):
            row = tuple(
                database.lobs.read(value)
                if isinstance(value, LOBRef) else value
                for value in row
            )
        materialized.append(row)
    return materialized


def build_udf_definition(session: Session, payload: bytes) -> UDFDefinition:
    """Decode an ``OP_REGISTER_UDF`` payload, enforcing session policy."""
    name, params, ret, design_name, entry, callbacks, udf_payload = (
        protocol.decode_values(payload, 7)
    )
    design = Design(design_name)
    session.check_design_allowed(design)
    # A session-level QuotaPolicy caps this session's registrations;
    # None inherits the server VM's default policy at load time.
    policy = session.policy
    return UDFDefinition(
        name=name,
        signature=UDFSignature(tuple(params), ret),
        design=design,
        payload=bytes(udf_payload),
        entry=entry,
        callbacks=tuple(callbacks),
        # The wire protocol carries no hints; the analyzer derives
        # them from the (re-verified) payload at registration.
        cost=None,
        fuel=policy.fuel if policy is not None else None,
        memory=policy.memory if policy is not None else None,
    )


class DatabaseServer:
    """TCP front end over one embedded :class:`Database`."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        trust_all_clients: bool = False,
    ):
        self.database = database
        self.trust_all_clients = trust_all_clients
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        # Drain bookkeeping: live client threads and their sockets, the
        # number of statements currently being handled, and the counter
        # lock that makes cross-thread mutation safe.
        self._state_lock = threading.Lock()
        self._client_threads: List[threading.Thread] = []
        self._client_conns: Set[socket.socket] = set()
        self._busy = 0
        self.sessions_served = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="server-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain in-flight statements, then close every connection.

        A statement already executing when ``stop`` is called still gets
        its result (or error) frame, up to ``timeout`` seconds; only
        then are sockets closed, which unblocks threads idling in
        ``recv`` so they can be joined.
        """
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._state_lock:
                if self._busy == 0:
                    break
            time.sleep(0.005)
        with self._state_lock:
            conns = list(self._client_conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        with self._state_lock:
            threads = [t for t in self._client_threads if t.is_alive()]
        for thread in threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))

    def __enter__(self) -> "DatabaseServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept / serve -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_client,
                args=(conn, addr),
                name=f"client-{addr[1]}",
                daemon=True,
            )
            with self._state_lock:
                self.sessions_served += 1
                self._client_threads.append(thread)
                self._client_conns.add(conn)
            thread.start()

    def _serve_client(self, conn: socket.socket, addr) -> None:
        session = Session(
            peer=f"{addr[0]}:{addr[1]}", trusted=self.trust_all_clients
        )
        try:
            with conn:
                while True:
                    try:
                        opcode, payload = protocol.recv_frame(conn)
                    except ProtocolError:
                        return
                    if opcode == protocol.OP_CLOSE:
                        return
                    with self._state_lock:
                        self._busy += 1
                    try:
                        self._handle(conn, session, opcode, payload)
                    finally:
                        with self._state_lock:
                            self._busy -= 1
        except OSError:
            return
        finally:
            with self._state_lock:
                self._client_conns.discard(conn)
                if threading.current_thread() in self._client_threads:
                    self._client_threads.remove(
                        threading.current_thread()
                    )

    def _handle(self, conn, session: Session, opcode: int, payload: bytes) -> None:
        try:
            if opcode == protocol.OP_HELLO:
                if payload:
                    (tenant,) = protocol.decode_values(payload, 1)
                    session.tenant = str(tenant)
                protocol.send_frame(
                    conn,
                    protocol.OP_WELCOME,
                    protocol.encode_values(session.session_id, session.trusted),
                )
            elif opcode == protocol.OP_PING:
                protocol.send_frame(conn, protocol.OP_PONG)
            elif opcode == protocol.OP_EXECUTE:
                (sql,) = protocol.decode_values(payload, 1)
                session.note_statement()
                with self._lock:
                    result = self.database.execute(sql)
                    rows = materialize_rows(self.database, result.rows)
                for frame_opcode, frame_payload in protocol.result_frames(
                    result.columns, rows
                ):
                    protocol.send_frame(conn, frame_opcode, frame_payload)
            elif opcode == protocol.OP_REGISTER_UDF:
                definition = build_udf_definition(session, payload)
                with self._lock:
                    # The payload may be classfile bytes compiled at the
                    # client; registration re-verifies them (never trust
                    # the client).
                    self.database.register_udf(definition)
                session.note_udf_registered()
                protocol.send_frame(conn, protocol.OP_OK)
            else:
                raise ProtocolError(f"unknown opcode {opcode}")
        except Exception as exc:  # every failure becomes an ERROR frame
            protocol.send_frame(
                conn,
                protocol.OP_ERROR,
                protocol.encode_values(type(exc).__name__, str(exc)),
            )

    def stats_snapshot(self) -> dict:
        """Server counters (attachable via ``db.attach_stats_source``)."""
        with self._state_lock:
            data = {
                "kind": "threaded",
                "sessions_served": self.sessions_served,
                "open_connections": len(self._client_conns),
                "busy_statements": self._busy,
            }
        if self.database.wal is not None:
            data["wal"] = self.database.wal.stats()
        return data

    def _materialize(self, rows):
        """Back-compat alias for :func:`materialize_rows`."""
        return materialize_rows(self.database, rows)
