"""The PREDATOR-analog database facade.

``Database`` wires every substrate together the way Section 4 describes
the real system: a storage manager (disk + buffer pool + LOBs + catalog),
a query processing engine on top of it, one JaguarVM instance "created
when the database server starts up", the callback broker, and the UDF
registry spanning all six execution designs.

Typical embedded use::

    from repro import Database

    with Database() as db:                      # in-memory
        db.execute("CREATE TABLE t (id INT, data BYTEARRAY)")
        db.execute("INSERT INTO t VALUES (1, zerobytes(100))")
        db.execute(
            "CREATE FUNCTION plus1(int) RETURNS int LANGUAGE JAGUAR "
            "DESIGN SANDBOX AS 'def plus1(x: int) -> int: return x + 1'"
        )
        rows = db.execute("SELECT plus1(id) FROM t").rows

``Database(path)`` persists pages under ``path/`` and reloads tables and
registered UDFs on reopen.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Iterable, List, Optional, Sequence

from .core.callbacks import CallbackBroker
from .core.designs import Design
from .core.udf import (
    ServerEnvironment,
    UDFDefinition,
    UDFRegistry,
    UDFSignature,
)
from .errors import PlanError, RecordError, SimulatedCrash, WALError
from .sql import ast_nodes as A
from .sql.executor import QueryResult, StatementExecutor
from .sql.parser import parse_script, parse_statement
from .sql.plancache import PlanCache
from .storage.buffer import BufferPool
from .storage.mvcc import SnapshotManager
from .storage.catalog import Catalog, TableInfo, UDFInfo
from .storage.disk import DiskManager
from .storage.heapfile import HeapFile
from .storage.lob import LOBManager, LOBRef
from .storage.wal import NO_FAULTS, WriteAheadLog
from .sql.operators import DEFAULT_BATCH_SIZE
from .storage.record import ColumnType, serialize_record
from .vm.machine import JaguarVM

#: Byte-array values larger than this are spilled to LOB pages; smaller
#: ones are stored inline in the record.  The paper's Rel100 rows stay
#: inline; Rel10000 rows become LOBs.
DEFAULT_LOB_THRESHOLD = 1024


class Database:
    """An embedded OR-DBMS instance with secure UDF extensibility."""

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = 8192,
        buffer_capacity: int = 512,
        lob_threshold: int = DEFAULT_LOB_THRESHOLD,
        use_jit: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int = 1,
        metrics: bool = False,
        adaptive: bool = False,
        inlining: bool = False,
        tiering: bool = False,
        tier1_threshold: Optional[int] = None,
        wal: Optional[bool] = None,
        group_commit_window: float = 0.0,
        faults=None,
    ):
        self.path = path
        if path is None:
            data_path = None
            catalog_path = None
            wal_path = None
        else:
            os.makedirs(path, exist_ok=True)
            data_path = os.path.join(path, "data.pages")
            catalog_path = os.path.join(path, "catalog.json")
            wal_path = os.path.join(path, "wal.log")
        #: Durability defaults to "on iff persistent": a path-backed
        #: database gets a write-ahead log (``path/wal.log``) and crash
        #: recovery on open; an in-memory one has nothing to recover.
        use_wal = (path is not None) if wal is None else bool(wal)
        if use_wal and path is None:
            raise ValueError("WAL requires a path-backed database")
        self.disk = DiskManager(
            data_path, page_size=page_size, wal_mode=use_wal, faults=faults
        )
        self.wal: Optional[WriteAheadLog] = None
        if use_wal:
            self.wal = WriteAheadLog(
                wal_path,
                group_window=group_commit_window,
                faults=faults if faults is not None else NO_FAULTS,
            )
            # Recovery must precede the buffer pool and catalog: it
            # rewrites data pages and the catalog sidecar underneath.
            self.wal.recover(self.disk, catalog_path)
        self.pool = BufferPool(self.disk, capacity=buffer_capacity)
        if self.wal is not None:
            self.pool.attach_wal(self.wal)
        self.lobs = LOBManager(self.pool)
        self.catalog = Catalog(
            catalog_path, deferred=use_wal, on_change=self._catalog_changed
        )
        self.lob_threshold = lob_threshold

        self.broker = CallbackBroker()
        self.vm = JaguarVM(self.broker.signatures(), use_jit=use_jit)
        from .vm.threadgroups import ThreadGroupRegistry

        self.thread_groups = ThreadGroupRegistry()
        self.environment = ServerEnvironment(
            vm=self.vm,
            broker=self.broker,
            lobs=self.lobs,
            thread_groups=self.thread_groups,
        )
        self.batch_size = batch_size
        self.parallelism = parallelism
        self.tiering = tiering
        if tier1_threshold is not None:
            self.tier1_threshold = tier1_threshold
        #: Froid-style UDF inlining: when True the optimizer replaces
        #: call sites of decompilable pure UDFs with their lifted SQL
        #: expression (no VM entry at all).  Mutable at runtime
        #: (``db.inlining = True``) — the next query plans with it,
        #: which is how the benchmark sweeps inlined vs opaque execution
        #: over one populated database.  Off by default: seed plans and
        #: EXPLAIN output are reproduced exactly.
        self.inlining = bool(inlining)
        from .obs import Observability

        #: Runtime observability switchboard: ``metrics=True`` collects
        #: cumulative counters/histograms (``db.stats()``), and
        #: ``adaptive=True`` feeds observed UDF costs and predicate
        #: selectivities back into the optimizer.  Both default off, in
        #: which case execution takes the uninstrumented code paths.
        self.observability = Observability(metrics=metrics, adaptive=adaptive)
        self.registry = UDFRegistry(self.environment)
        self._executor = StatementExecutor(self)
        #: DDL serialization: schema-shaped statements (CREATE/DROP
        #: TABLE, CREATE INDEX, CREATE/DROP FUNCTION) run under this
        #: lock.  DML takes only its table's write lock
        #: (:meth:`table_write_lock`), so writers on disjoint tables run
        #: concurrently; lock order is always table < write < commit.
        self._write_lock = threading.RLock()
        #: Publish serialization: WAL append + MVCC snapshot install +
        #: catalog capture happen atomically under this lock, giving
        #: commit records a global order even with per-table writers.
        self._commit_lock = threading.RLock()
        if use_wal:
            # Free-list pops (page allocation) must serialize with
            # publishes: the free list and geometry only ever change at
            # commit granularity, so a commit record's geometry never
            # names free-list state another statement hasn't durably
            # logged.  See DiskManager.publish_lock.
            self.disk.publish_lock = self._commit_lock
        self._table_locks: dict = {}
        self._table_locks_guard = threading.Lock()
        #: MVCC-lite snapshot store (disabled by default — see
        #: :mod:`repro.storage.mvcc`).  The concurrent server enables it
        #: before accepting connections: ``db.snapshots.enable(db)``.
        self.snapshots = SnapshotManager()
        #: Shared prepared-plan cache, consulted by
        #: :meth:`execute_read`; keyed on SQL text +
        #: :meth:`settings_fingerprint`, so DDL/UDF changes (which bump
        #: the catalog epoch) invalidate structurally.
        self.plan_cache = PlanCache()
        self._stats_sources: dict = {}
        if self.wal is not None:
            self._stats_sources["wal"] = self.wal.stats
        self._reload_udfs()

    @property
    def batch_size(self) -> int:
        """Rows per executor batch; 1 is exact tuple-at-a-time.

        Mutable at runtime (``db.batch_size = 256``) — the next query
        picks it up, which is how the benchmark sweeps batch sizes over
        one populated database.
        """
        return self.environment.batch_size

    @batch_size.setter
    def batch_size(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"batch_size must be >= 1, got {value}")
        self.environment.batch_size = int(value)

    @property
    def parallelism(self) -> int:
        """Worker fan-out for UDF execution; 1 is exact serial semantics.

        Mutable at runtime (``db.parallelism = 4``) — the next query
        plans Exchange operators and sizes isolated worker pools at the
        new width.  ``parallelism=1`` reproduces the serial plans and
        row order bit for bit.
        """
        return self.environment.parallelism

    @parallelism.setter
    def parallelism(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"parallelism must be >= 1, got {value}")
        self.environment.parallelism = int(value)

    @property
    def tiering(self) -> bool:
        """Tiered UDF execution: promote hot UDFs to batch kernels.

        Mutable at runtime (``db.tiering = True``) — the next batch of
        invocations counts toward promotion.  Off by default: every
        executor takes its tier-0 (seed) code paths and plans, results,
        and benchmarks are reproduced exactly.
        """
        return self.environment.tiering

    @tiering.setter
    def tiering(self, value: bool) -> None:
        self.environment.tiering = bool(value)

    @property
    def tier1_threshold(self) -> int:
        """Observed call count at which a UDF is considered hot.

        0 promotes eligible UDFs on their first batch — useful for
        tests and benchmarks that want tier-1 behaviour immediately.
        """
        return self.environment.tier1_threshold

    @tier1_threshold.setter
    def tier1_threshold(self, value: int) -> None:
        if value < 0:
            raise ValueError(
                f"tier1_threshold must be >= 0, got {value}"
            )
        self.environment.tier1_threshold = int(value)

    # -- SQL entry points ------------------------------------------------------

    #: Statement classes that mutate storage or the catalog and so run
    #: through the write pipeline (:meth:`_run_write`).
    _WRITE_STATEMENTS = (
        A.CreateTable, A.DropTable, A.CreateIndex,
        A.Insert, A.Update, A.Delete,
        A.CreateFunction, A.DropFunction,
    )

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one SQL statement."""
        return self.execute_statement(parse_statement(sql))

    def execute_statement(self, statement: "A.Statement") -> QueryResult:
        """Run one parsed statement through the write pipeline if it
        mutates.

        Reads take no lock at all — with snapshots disabled (embedded
        default) that is exactly the seed single-threaded behaviour;
        with them enabled, concurrent readers go through
        :meth:`execute_read` instead.
        """
        if isinstance(statement, self._WRITE_STATEMENTS):
            return self._run_write(
                self._write_locks(statement),
                lambda: self._executor.execute(statement),
                lambda: self._install_after_write(statement),
            )
        return self._executor.execute(statement)

    # -- write pipeline -------------------------------------------------------

    def table_write_lock(self, name: str) -> threading.RLock:
        """The write lock for one table (created on first use, kept for
        the database's lifetime — a dropped-and-recreated table reuses
        its lock, which is harmless and race-free)."""
        key = name.lower()
        with self._table_locks_guard:
            lock = self._table_locks.get(key)
            if lock is None:
                lock = self._table_locks[key] = threading.RLock()
            return lock

    def _write_locks(self, statement: "A.Statement") -> list:
        """The ordered lock set for one mutating statement.

        DML locks only its table.  DDL locks the affected table (if
        any) plus the global :attr:`_write_lock`; taking the table lock
        *first* keeps the global order table < write < commit, so DML
        (table → commit) and DDL (table → write → commit) never deadlock.
        """
        if isinstance(statement, (A.Insert, A.Update, A.Delete)):
            return [self.table_write_lock(statement.table)]
        locks = []
        if isinstance(statement, (A.CreateTable, A.DropTable)):
            locks.append(self.table_write_lock(statement.name))
        elif isinstance(statement, A.CreateIndex):
            locks.append(self.table_write_lock(statement.table))
        locks.append(self._write_lock)
        return locks

    def _run_write(self, locks: list, body, install):
        """Execute one mutating operation with WAL durability.

        The sequence: take the statement's locks, attribute dirty pages
        to this thread, run ``body``, then publish under the commit
        lock (log the statement's page images + catalog blob, install
        the MVCC snapshot), release everything, and only then wait for
        the commit fsync (group commit happens outside all locks, so a
        sleeping leader never blocks other tables' writers).

        A statement that fails *logically* (constraint violation,
        unknown column) still commits its partial page effects — the
        engine is statement-deterministic, so replaying the same
        statement fails identically, and recovery reproduces the exact
        crashed state.  A statement killed by an injected crash commits
        nothing.
        """
        for lock in locks:
            lock.acquire()
        tracker = self.pool.begin_tracking() if self.wal is not None else None
        commit_lsn = None
        error = None
        result = None
        try:
            try:
                result = body()
            except (SimulatedCrash, WALError):
                # Storage died mid-statement: publish nothing.
                raise
            except Exception as exc:
                error = exc
            with self._commit_lock:
                if self.wal is not None:
                    commit_lsn = self._log_statement(tracker)
                install()
        finally:
            if tracker is not None:
                self.pool.end_tracking(tracker)
            for lock in reversed(locks):
                lock.release()
        if commit_lsn is not None:
            self.wal.commit_wait(commit_lsn)
        if error is not None:
            raise error
        return result

    def _log_statement(self, tracker) -> int:
        """Append one statement's redo batch (caller holds the commit
        lock, so the page images + catalog + geometry are a consistent
        cut).

        Buffered frees are applied first: the freed pages join the
        free list only now, as tracked page dirties, so the geometry
        this commit records is backed by chain-pointer images in this
        very batch — never by another statement's unlogged frames.
        """
        self.pool.publish_frees(tracker)
        images = self.pool.collect_images(tracker)
        blob = self.catalog.serialize() if tracker.catalog_dirty else None
        lsn = self.wal.log_statement(images, blob, self.disk.geometry())
        self.pool.note_logged([pid for pid, _ in images], lsn)
        return lsn

    def _catalog_changed(self) -> None:
        """Deferred-catalog notification: the running statement changed
        schema/UDF state, so its commit must log the catalog blob."""
        tracker = self.pool.current_tracker()
        if tracker is not None:
            tracker.catalog_dirty = True

    def execute_read(self, sql: str) -> QueryResult:
        """Run one read-only statement, concurrency-safe.

        The concurrent server's read path: the statement is looked up in
        (or planned into) the shared :attr:`plan_cache`, executed against
        a freshly pinned snapshot when :attr:`snapshots` is enabled (so
        scans never touch live pages), and given private per-query UDF
        executors.  Adaptive optimization re-plans per query by design,
        so it bypasses the cache.  A statement that turns out to be a
        write falls through to :meth:`execute_statement` (serialized).
        """
        fingerprint = self.settings_fingerprint()
        # Only SELECT-shaped texts participate in the cache: writes are
        # never cached, and counting them as misses would make the
        # hit-rate statistic meaningless under mixed workloads.
        use_cache = (
            self.observability.adaptive is None
            and sql.lstrip()[:6].lower() == "select"
        )
        entry = (
            self.plan_cache.lookup(sql, fingerprint) if use_cache else None
        )
        if entry is not None:
            statement, plan = entry
        else:
            statement, plan = parse_statement(sql), None
        if not isinstance(statement, A.Select):
            return self.execute_statement(statement)
        snapshot = self.snapshots.pin() if self.snapshots.enabled else None
        try:
            result, plan = self._executor.select_with_plan(
                statement, snapshot=snapshot, plan=plan,
                private=snapshot is not None,
            )
        finally:
            if snapshot is not None:
                snapshot.release()
        if use_cache and entry is None:
            self.plan_cache.store(sql, fingerprint, statement, plan)
        return result

    def settings_fingerprint(self) -> tuple:
        """Plan-affecting state: schema epoch + optimizer settings.

        Part of every plan-cache key; anything that changes what
        ``plan_select``/``optimize`` would produce must appear here.
        """
        return (self.catalog.epoch, self.parallelism, self.inlining)

    def _install_after_write(self, statement: "A.Statement") -> None:
        """Freeze the written table's new state for snapshot readers.

        Runs under the commit lock (inside :meth:`_run_write`), even
        when the statement failed — a partially applied DML still
        dirtied pages, and the next snapshot must see what live reads
        would.

        Visibility deliberately precedes durability: the install
        happens after the WAL append but before the commit fsync, so
        with a nonzero :attr:`group_commit_window` other sessions can
        read a statement whose log records a crash would still erase
        (the writer itself is never acknowledged before its fsync).
        This is the classic asynchronous-commit trade — PostgreSQL's
        ``synchronous_commit=off`` has the same window — chosen here
        so snapshot installs keep the commit-lock ordering without
        making every reader wait on the group-commit leader's sleep.
        """
        if not self.snapshots.enabled:
            return
        if isinstance(statement, A.DropTable):
            self.snapshots.forget(statement.name)
            return
        if isinstance(statement, (A.Insert, A.Update, A.Delete)):
            table_name = statement.table
        elif isinstance(statement, A.CreateTable):
            table_name = statement.name
        else:
            return  # indexes / functions don't change heap contents
        if self.catalog.has_table(table_name):
            table = self.catalog.get_table(table_name)
            self.snapshots.install(
                self.pool, table.name, table.first_page
            )

    def execute_script(self, sql: str) -> List[QueryResult]:
        """Run a semicolon-separated script; returns one result each."""
        return [
            self.execute_statement(statement)
            for statement in parse_script(sql)
        ]

    def query(self, sql: str) -> List[tuple]:
        """Shorthand: execute and return the rows."""
        return self.execute(sql).rows

    def stats(self) -> dict:
        """JSON-able observability dump: metrics plus adaptive feedback.

        ``metrics`` is the cumulative registry snapshot (None unless
        ``Database(metrics=True)``); ``adaptive`` is the feedback
        store's state (None unless ``Database(adaptive=True)``).
        """
        data = self.observability.stats()
        for name, source in self._stats_sources.items():
            data[name] = source()
        return data

    def attach_stats_source(self, name: str, source: Callable[[], object]):
        """Add a section to :meth:`stats` (servers surface theirs here)."""
        self._stats_sources[name] = source

    # -- programmatic data path (used by workload generators) ---------------------

    def insert_rows(
        self, table_name: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Bulk-insert host values, bypassing the SQL parser.

        On a WAL-backed database the batch is chunked into commit
        units bounded by the buffer pool: a statement's dirty pages
        are unevictable until its commit is logged, so one unit must
        fit in the pool (an unchunked million-row batch would exhaust
        the frames mid-flight).  Each chunk is one commit record and
        one fsync; a crash keeps a committed prefix of whole chunks
        (plus the deterministic partial chunk if a row fails
        logically, same as the seed).  Without a WAL the whole batch
        is a single unit, byte-identical to the seed.
        """
        table = self.catalog.get_table(table_name)
        count = 0
        iterator = iter(rows)
        # Leave headroom below capacity for pinned frames and the
        # pages a single row can touch (heap chain + LOB spill).
        budget = max(8, (self.pool.capacity * 3) // 4)
        exhausted = False

        def body():
            nonlocal count, exhausted
            tracker = self.pool.current_tracker()
            while True:
                try:
                    row = next(iterator)
                except StopIteration:
                    exhausted = True
                    return
                self._insert_row_locked(table, list(row))
                count += 1
                if tracker is not None and len(tracker.pages) >= budget:
                    return  # commit this unit; continue in the next

        while not exhausted:
            self._run_write(
                [self.table_write_lock(table.name)],
                body,
                lambda: self.snapshots.install(
                    self.pool, table.name, table.first_page
                ),
            )
        return count

    def insert_row(self, table: TableInfo, values: List[object]) -> None:
        self._run_write(
            [self.table_write_lock(table.name)],
            lambda: self._insert_row_locked(table, values),
            lambda: self.snapshots.install(
                self.pool, table.name, table.first_page
            ),
        )

    def _insert_row_locked(
        self, table: TableInfo, values: List[object]
    ) -> None:
        if len(values) != len(table.columns):
            raise RecordError(
                f"{len(values)} values for {len(table.columns)} columns"
            )
        record, prepared = self.prepare_row(table, values)
        heap = HeapFile(self.pool, table.first_page)
        rid = heap.insert(record)
        self._executor._index_add(table, rid, prepared)

    def encode_row(self, table: TableInfo, values: List[object]) -> bytes:
        """Validate, spill large byte arrays to LOBs, and serialize."""
        return self.prepare_row(table, values)[0]

    def prepare_row(self, table: TableInfo, values: List[object]):
        """As :meth:`encode_row`, also returning the prepared values."""
        prepared: List[object] = []
        for value, column in zip(values, table.columns):
            if value is None:
                if not column.nullable:
                    raise RecordError(
                        f"column {column.name!r} is NOT NULL"
                    )
                prepared.append(None)
                continue
            if column.col_type is ColumnType.FLOAT and isinstance(value, int):
                value = float(value)
            if column.col_type is ColumnType.BYTES and isinstance(
                value, (bytes, bytearray, memoryview)
            ):
                if len(value) > self.lob_threshold:
                    value = self.lobs.write(bytes(value))
            prepared.append(value)
        return serialize_record(prepared, table.column_types()), prepared

    def read_lob(self, ref: LOBRef) -> bytes:
        return self.lobs.read(ref)

    # -- UDF management -------------------------------------------------------------

    def register_udf(
        self, definition: UDFDefinition, persist: bool = True
    ) -> None:
        """Admit a UDF (validating its payload) and persist it.

        Registration is a catalog mutation, so on a WAL-backed database
        a *direct* call (not via CREATE FUNCTION, which is already
        inside the write pipeline) runs through the pipeline itself —
        otherwise the catalog change would never reach the log.
        """

        def body():
            self.registry.register(definition)
            if persist:
                self.catalog.add_udf(
                    UDFInfo(
                        name=definition.name,
                        language=definition.language,
                        design=definition.design.value,
                        entry=definition.entry,
                        payload=definition.payload,
                        param_types=list(definition.signature.param_types),
                        ret_type=definition.signature.ret_type,
                        callbacks=list(definition.callbacks),
                    )
                )

        if (
            self.wal is not None and persist
            and self.pool.current_tracker() is None
        ):
            self._run_write([self._write_lock], body, lambda: None)
        else:
            body()

    def unregister_udf(self, name: str) -> None:
        def body():
            self.registry.unregister(name)
            if self.catalog.has_udf(name):
                self.catalog.drop_udf(name)

        if self.wal is not None and self.pool.current_tracker() is None:
            self._run_write([self._write_lock], body, lambda: None)
        else:
            body()

    def kill_udf(self, name: str) -> None:
        """Revoke a (sandboxed) UDF's running invocations (Section 6.1).

        The UDF's thread group is killed: every in-flight invocation's
        resource account is revoked, so the sandboxed code dies at its
        next fuel check — at most one basic block away — and the query
        fails with :class:`~repro.errors.FuelExhausted` while the server
        thread survives.  Registration is untouched; the next query gets
        a fresh group.
        """
        self.thread_groups.kill(name.lower())

    def _reload_udfs(self) -> None:
        """Re-register persisted UDFs on reopen (payloads re-verify)."""
        for info in list(self.catalog.udfs.values()):
            definition = UDFDefinition(
                name=info.name,
                signature=UDFSignature(
                    tuple(info.param_types), info.ret_type
                ),
                design=Design(info.design),
                payload=info.payload,
                entry=info.entry,
                callbacks=tuple(info.callbacks),
                # Persisted registrations re-derive hints from bytecode
                # on reload, like any hint-less registration.
                cost=None,
            )
            self.registry.register(definition)

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def group_commit_window(self) -> float:
        """Seconds the group-commit leader waits for followers.

        Mutable at runtime (``db.group_commit_window = 0.002``) — the
        next commit fsync picks it up, which is how the benchmark
        sweeps windows over one populated database.  0.0 syncs every
        statement individually (still correct, just more fsyncs).

        A nonzero window widens the visible-before-durable gap for
        *other* sessions: a commit becomes readable (MVCC install) as
        soon as it publishes, up to a window before its fsync lands
        (see :meth:`_install_after_write`).  The writer itself always
        blocks until its commit LSN is durable.
        """
        return self.wal.group_window if self.wal is not None else 0.0

    @group_commit_window.setter
    def group_commit_window(self, value: float) -> None:
        if self.wal is None:
            raise ValueError(
                "group commit requires a WAL-backed (path) database"
            )
        if value < 0:
            raise ValueError(
                f"group_commit_window must be >= 0, got {value}"
            )
        self.wal.group_window = float(value)

    def checkpoint(self) -> None:
        """Flush everything the WAL describes and truncate the log.

        Order matters: make the log durable to its tail (so every
        handed-out commit LSN retires), write back all logged dirty
        pages, settle the data file to exactly the committed geometry,
        persist the catalog sidecar, and only then truncate the log.
        A crash anywhere in between recovers correctly — redo is
        idempotent over already-flushed pages.  Runs under the commit
        lock, so no statement can publish mid-checkpoint.
        """
        if self.wal is None:
            self.flush()
            return
        with self._commit_lock:
            self.wal.ensure_durable(self.wal.tail_lsn())
            self.pool.flush_all()
            self.disk.settle()
            self.catalog.save(force=True)
            self.wal.truncate()

    def flush(self) -> None:
        if self.wal is not None:
            self.checkpoint()
            return
        self.pool.flush_all()
        self.disk.sync()
        self.catalog.save()

    def close(self) -> None:
        """Shut down cleanly: a WAL-backed database checkpoints, so the
        log is empty, the data file settled, and reopen recovers
        nothing.  (After an injected crash the storage layer is dead;
        close skips the checkpoint and recovery owns the state.)"""
        self.registry.close()
        if self.disk is not None:
            if self.wal is not None:
                clean = False
                try:
                    self.checkpoint()
                    clean = True
                except (SimulatedCrash, WALError):
                    pass  # crashed storage: state belongs to recovery
                finally:
                    self.wal.close()
                # After a crashed checkpoint, close the data file
                # without syncing: the in-memory header may hold
                # geometry from a crashed, uncommitted statement, and
                # in WAL mode only checkpoint/recovery may write the
                # header — a header flushed here would survive reopen
                # whenever the log holds no complete committed
                # statement to restore it from.
                self.disk.close(sync=clean)
            else:
                self.pool.flush_all()
                self.disk.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
